//repolint:hotpath sink shard ops run per data item; see tracegate
package wmm

import (
	"sync"
	"time"

	"repro/internal/dataflow"
	"repro/internal/metrics"
)

type entry struct {
	key       Key
	val       dataflow.Value
	remaining int // consumers still to fetch
	expiresAt time.Duration
	hasTTL    bool
}

// expiryHeap is a min-heap of TTL'd entries ordered by expiry time. Entries
// that leave the shard maps early (consumed, replaced or released) are left
// in the heap and lazily discarded when popped, so removal stays O(1) and
// each entry costs one O(log n) push plus one O(log n) pop over its
// lifetime — never a scan of live entries. Hand-rolled rather than
// container/heap: the push/pop below run on the Put hot path and the
// interface indirection is measurable there.
type expiryHeap []*entry

func (h *expiryHeap) push(e *entry) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].expiresAt <= q[i].expiresAt {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
	*h = q
}

func (h *expiryHeap) pop() *entry {
	q := *h
	n := len(q) - 1
	e := q[0]
	q[0] = q[n]
	q[n] = nil // release the entry for GC once processed
	q = q[:n]
	*h = q
	q.siftDown(0)
	return e
}

func (h expiryHeap) siftDown(i int) {
	n := len(h)
	for {
		min, l, r := i, 2*i+1, 2*i+2
		if l < n && h[l].expiresAt < h[min].expiresAt {
			min = l
		}
		if r < n && h[r].expiresAt < h[min].expiresAt {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// shard is one lock stripe of the sink: a slice of the key space with its
// own index maps, expiry heap, counters and occupancy integral. Aggregate
// readers merge the per-shard state; the hot path touches exactly one
// shard.
type shard struct {
	mu   sync.Mutex
	mem  map[string]map[string]map[string]*entry // reqID -> fn -> data
	disk map[string]map[Key]*entry               // reqID -> key (spill tier)
	ttl  expiryHeap

	// Free lists recycle the hot-path allocations of a Put: the entry record
	// and the two inner index maps. All reuse happens under sh.mu, so the
	// lists need no further synchronization. Bounded so a burst's worth of
	// garbage does not stay pinned forever.
	freeEnts []*entry
	freeData []map[string]*entry
	freeFn   []map[string]map[string]*entry

	// ttlStale counts heap items whose entry has already left the maps
	// (consumed, replaced or released before its TTL fired). When stale
	// items outnumber live ones the heap is compacted, so the skeletons
	// pinned by lazy deletion stay bounded by the live entry count.
	ttlStale int

	// stats holds this stripe's counters; PeakMemBytes is tracked globally
	// on the Sink (per-shard peaks at different times do not sum to the
	// true peak) and filled in when Stats merges the shards.
	stats    Stats
	memBytes int64
	memInt   *metrics.Integral // MB·s of this stripe's memory occupancy

	// obsStripe is this shard's lane in the process-wide striped obs
	// counters (obs.go); set once at NewSink so hot-path updates never
	// contend across shards.
	obsStripe uint32
}

// compactMinHeap is the heap size below which compaction is not worth it.
const compactMinHeap = 64

// Free-list bounds: enough to absorb a steady-state invoke storm's churn,
// small enough that an idle shard pins only a few KB.
const (
	freeEntCap = 256
	freeMapCap = 64
)

// newEntry returns an entry initialized to {key, val, consumers}, reusing a
// recycled record when one is available. Caller holds sh.mu.
func (sh *shard) newEntry(key Key, v dataflow.Value, consumers int) *entry {
	if n := len(sh.freeEnts); n > 0 {
		e := sh.freeEnts[n-1]
		sh.freeEnts[n-1] = nil
		sh.freeEnts = sh.freeEnts[:n-1]
		*e = entry{key: key, val: v, remaining: consumers}
		return e
	}
	return &entry{key: key, val: v, remaining: consumers}
}

// recycleEntry returns e to the free list. The caller must have removed e
// from both tier maps and must guarantee no expiry-heap skeleton still
// points at it: e.hasTTL is false (never pushed, or cleared when the heap
// item was popped/discarded). An entry whose skeleton is still queued is
// instead val-zeroed and counted in ttlStale; the heap pop recycles it.
// Caller holds sh.mu.
func (sh *shard) recycleEntry(e *entry) {
	if len(sh.freeEnts) >= freeEntCap {
		return
	}
	*e = entry{}
	sh.freeEnts = append(sh.freeEnts, e)
}

// newDataMap returns an empty data-name index map, recycled if possible.
func (sh *shard) newDataMap() map[string]*entry {
	if n := len(sh.freeData); n > 0 {
		m := sh.freeData[n-1]
		sh.freeData[n-1] = nil
		sh.freeData = sh.freeData[:n-1]
		return m
	}
	return make(map[string]*entry)
}

func (sh *shard) recycleDataMap(m map[string]*entry) {
	if len(sh.freeData) >= freeMapCap {
		return
	}
	clear(m)
	sh.freeData = append(sh.freeData, m)
}

// newFnMap returns an empty function index map, recycled if possible.
func (sh *shard) newFnMap() map[string]map[string]*entry {
	if n := len(sh.freeFn); n > 0 {
		m := sh.freeFn[n-1]
		sh.freeFn[n-1] = nil
		sh.freeFn = sh.freeFn[:n-1]
		return m
	}
	return make(map[string]map[string]*entry)
}

func (sh *shard) recycleFnMap(m map[string]map[string]*entry) {
	if len(sh.freeFn) >= freeMapCap {
		return
	}
	clear(m)
	sh.freeFn = append(sh.freeFn, m)
}

// maybeCompactTTL rebuilds the expiry heap without its stale items once
// they outnumber the live ones. Amortized O(1) per operation: a rebuild
// costs O(n) but at least n/2 stale items were discarded to earn it.
func (sh *shard) maybeCompactTTL() {
	if len(sh.ttl) < compactMinHeap || sh.ttlStale*2 <= len(sh.ttl) {
		return
	}
	q := sh.ttl[:0]
	for _, e := range sh.ttl {
		if dm := sh.fnMap(e.key); dm != nil && dm[e.key.Data] == e {
			q = append(q, e)
		} else {
			// Discarded skeleton: the entry left the maps long ago and this
			// was its last reference.
			e.hasTTL = false
			sh.recycleEntry(e)
		}
	}
	for i := len(q); i < len(sh.ttl); i++ {
		sh.ttl[i] = nil
	}
	if len(q)*2 < cap(sh.ttl) {
		q = append(expiryHeap(nil), q...) // let a burst's backing array go
	}
	sh.ttl = q
	for i := len(q)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
	sh.ttlStale = 0
}

func (sh *shard) init() {
	sh.mem = make(map[string]map[string]map[string]*entry)
	sh.disk = make(map[string]map[Key]*entry)
	sh.memInt = metrics.NewIntegral()
}

// fnMap returns the data map for key's (ReqID, Fn), or nil.
func (sh *shard) fnMap(key Key) map[string]*entry {
	fnMap := sh.mem[key.ReqID]
	if fnMap == nil {
		return nil
	}
	return fnMap[key.Fn]
}

// gcEmpty prunes empty inner maps after a removal at key.
func (sh *shard) gcEmpty(key Key) {
	fnMap := sh.mem[key.ReqID]
	if fnMap == nil {
		return
	}
	if dataMap := fnMap[key.Fn]; dataMap != nil && len(dataMap) == 0 {
		delete(fnMap, key.Fn)
		sh.recycleDataMap(dataMap)
	}
	if len(fnMap) == 0 {
		delete(sh.mem, key.ReqID)
		sh.recycleFnMap(fnMap)
	}
}

// expireLocked pops TTL-exceeded entries off the shard's heap: live ones
// move to the spill tier (or are dropped outright when already fully
// consumed), stale heap items are discarded. Amortized O(log n) per expired
// entry; O(1) when nothing has expired. Caller holds sh.mu.
func (s *Sink) expireLocked(sh *shard, at time.Duration) int {
	if s.opts.TTL <= 0 {
		return 0
	}
	n := 0
	for len(sh.ttl) > 0 {
		e := sh.ttl[0]
		if e.expiresAt > at {
			break
		}
		sh.ttl.pop()
		e.hasTTL = false // the heap skeleton is gone either way
		dataMap := sh.fnMap(e.key)
		if dataMap == nil || dataMap[e.key.Data] != e {
			sh.ttlStale--
			// Stale: consumed, replaced or released since insertion — the
			// heap held the last reference.
			sh.recycleEntry(e)
			continue
		}
		delete(dataMap, e.key.Data)
		sh.gcEmpty(e.key)
		s.adjustMem(sh, at, -e.val.Size)
		sh.stats.Expirations++
		obsExpired.Inc(sh.obsStripe)
		n++
		if e.remaining <= 0 && !s.opts.RetainInFlight {
			// Fully consumed (possible only with DisableProactive): no
			// consumer will return for it, so spilling would leak the bytes
			// on disk until request teardown — drop it instead. Under
			// RetainInFlight the entry is a replay source and spills so it
			// survives until the request completes.
			sh.recycleEntry(e)
			continue
		}
		reqDisk := sh.disk[e.key.ReqID]
		if reqDisk == nil {
			reqDisk = make(map[Key]*entry)
			sh.disk[e.key.ReqID] = reqDisk
		}
		reqDisk[e.key] = e
		s.diskBytes.Add(e.val.Size)
	}
	return n
}

// adjustMem applies a memory-tier byte delta to the shard's occupancy
// integral and the sink's global counters. The global total is atomic, so
// the peak observed through the CAS loop is the exact peak of the whole
// sink, not a sum of unsynchronized per-shard peaks. Caller holds sh.mu.
func (s *Sink) adjustMem(sh *shard, at time.Duration, delta int64) {
	sh.memBytes += delta
	sh.memInt.Set(at, metrics.BytesToMB(sh.memBytes))
	total := s.memBytes.Add(delta)
	for {
		peak := s.peakMem.Load()
		if total <= peak || s.peakMem.CompareAndSwap(peak, total) {
			return
		}
	}
}

// fnv32a seeds the key hash (FNV-1a).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// fnvMix folds one key component into h, terminated so that component
// boundaries are unambiguous.
func fnvMix(h uint32, s string) uint32 {
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= fnvPrime32
	}
	h ^= 0xff
	h *= fnvPrime32
	return h
}

// shardIdx maps the multi-level key onto its lock-stripe index.
func (s *Sink) shardIdx(key Key) uint32 {
	h := fnvMix(fnvOffset32, key.ReqID)
	h = fnvMix(h, key.Fn)
	h = fnvMix(h, key.Data)
	return h & s.mask
}

// shardOf maps the multi-level key onto its lock stripe.
func (s *Sink) shardOf(key Key) *shard {
	return &s.shards[s.shardIdx(key)]
}
