//repolint:hotpath sink Land/Get/Consume run per data item; see tracegate

// Package wmm implements the Wait-Match Memory: the per-node data sink of
// DataFlower's host-container collaborative communication mechanism (§7).
//
// The sink temporarily caches a function's input data before the function is
// triggered, indexed by the multi-level key (RequestID, FunctionName,
// DataName) to keep lookups cheap in a large sink. Two policies bound its
// memory footprint:
//
//   - Proactive release: every entry knows how many destination FLUs will
//     consume it; once the last consumer has fetched the data the entry is
//     dropped immediately (control-flow caches such as FaaSFlow can only
//     drop at request completion because they lack data-dependency
//     knowledge).
//   - Passive expire: entries carry a TTL; on expiry they are persisted to
//     the function-exclusive disk (modelled as a second tier) and evicted
//     from memory. A later Get is served from disk and reports it, so
//     callers can charge the slower access. An entry that was already fully
//     consumed when its TTL fires is dropped rather than spilled, and the
//     spill tier itself is reclaimed per request at completion, so neither
//     tier grows without bound in a long-running system.
//
// Internally the sink is sharded: the key is hashed across a power-of-two
// number of lock stripes, each with its own index, expiry min-heap, and
// counters. Put/Get/Peek lock exactly one stripe and pop only the entries
// whose TTL has actually fired (amortized O(log n)), so there is no
// O(all-entries) sweep and no single serialization point on the hot path
// under concurrent invocations. Aggregate readers (Stats, MemIntegralMBs,
// byte gauges) merge the per-shard state; per-stripe integrals sum linearly
// and the global byte total and peak are maintained atomically. Expiry is
// applied lazily — on each stripe's own accesses, on every ReleaseRequest
// and ExpireSweep (which visit all stripes), and at MemIntegralMBs reads —
// so a past-TTL entry on a quiet stripe is charged to the memory tier for
// at most the gap between requests, not until its stripe happens to be
// touched again.
//
// Timestamps are explicit time.Duration values so the same implementation
// serves both the wall-clock runtime plane and the virtual-time simulation
// plane. The sink is safe for concurrent use.
package wmm

import (
	"sync/atomic"
	"time"

	"repro/internal/dataflow"
)

// Key is the multi-level index of one datum.
type Key struct {
	ReqID string
	Fn    string // destination function
	Data  string // data name (input slot, possibly instance-qualified)
}

// Tier identifies where a Get was served from.
type Tier int

// Tiers.
const (
	Miss Tier = iota
	Memory
	Disk
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case Memory:
		return "memory"
	case Disk:
		return "disk"
	default:
		return "miss"
	}
}

// DefaultShards is the lock-stripe count used when Options.Shards is zero.
const DefaultShards = 32

// Options configures a Sink.
type Options struct {
	// TTL is the passive-expire timeout. Zero disables passive expiry.
	TTL time.Duration
	// DisableProactive turns off proactive release (for ablations).
	DisableProactive bool
	// Shards is the number of lock stripes the key space is hashed across,
	// rounded up to a power of two (DefaultShards when 0).
	Shards int
	// RetainInFlight keeps fully-consumed entries resident (payload intact)
	// until ReleaseRequest instead of dropping them at the last Get — the
	// fault-tolerance plane's replay source: while a request is in flight,
	// every input that already fed an instance can still be re-read to
	// deterministically re-execute that instance after a downstream node
	// failure. Retained entries still spill to disk on TTL (never dropped)
	// and are reclaimed by the request's end-of-life ReleaseRequest.
	RetainInFlight bool
}

// Stats are cumulative sink counters.
type Stats struct {
	Puts              int64
	MemHits           int64
	DiskHits          int64
	Misses            int64
	ProactiveReleases int64
	Expirations       int64
	// Retained counts entries whose last consumer fetched them while
	// RetainInFlight was set: instead of a proactive release they stayed
	// resident for replay until request completion.
	Retained     int64
	PeakMemBytes int64
}

// Merge adds other's counters into s, taking the larger peak. It aggregates
// sinks of different nodes; within one sink Stats already merges the shards.
func (s *Stats) Merge(other Stats) {
	s.Puts += other.Puts
	s.MemHits += other.MemHits
	s.DiskHits += other.DiskHits
	s.Misses += other.Misses
	s.ProactiveReleases += other.ProactiveReleases
	s.Expirations += other.Expirations
	s.Retained += other.Retained
	if other.PeakMemBytes > s.PeakMemBytes {
		s.PeakMemBytes = other.PeakMemBytes
	}
}

// Sink is one node's Wait-Match Memory plus its spill tier.
type Sink struct {
	opts   Options
	mask   uint32
	shards []shard

	memBytes  atomic.Int64
	diskBytes atomic.Int64
	peakMem   atomic.Int64
}

// NewSink returns an empty sink.
func NewSink(opts Options) *Sink {
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Sink{opts: opts, mask: uint32(size - 1), shards: make([]shard, size)}
	for i := range s.shards {
		s.shards[i].init()
		s.shards[i].obsStripe = uint32(i)
	}
	return s
}

// Shards returns the number of lock stripes.
func (s *Sink) Shards() int { return len(s.shards) }

// Retains reports whether the sink keeps consumed entries for replay
// (Options.RetainInFlight) — engines consult it at teardown, because a
// retained request always needs the end-of-life ReleaseRequest sweep (the
// residue heuristic that skips it assumes consumption frees entries).
func (s *Sink) Retains() bool { return s.opts.RetainInFlight }

// Put caches v for key at virtual/wall time at. consumers is the number of
// destination FLUs that will fetch the datum (>=1); once they all have, the
// entry is proactively released. Re-putting an existing key replaces it.
func (s *Sink) Put(at time.Duration, key Key, v dataflow.Value, consumers int) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.expireLocked(sh, at)
	s.putLocked(sh, at, key, v, consumers)
	sh.maybeCompactTTL()
}

// putLocked is Put's body once the stripe lock is held and pending
// expirations have been applied; PutBatch amortizes the lock acquisition,
// expiry pass and compaction check over many keys on the same stripe.
// Caller holds sh.mu.
func (s *Sink) putLocked(sh *shard, at time.Duration, key Key, v dataflow.Value, consumers int) {
	if consumers < 1 {
		consumers = 1
	}
	sh.stats.Puts++
	obsPuts.Inc(sh.obsStripe)
	fnMap := sh.mem[key.ReqID]
	if fnMap == nil {
		fnMap = sh.newFnMap()
		sh.mem[key.ReqID] = fnMap
	}
	dataMap := fnMap[key.Fn]
	if dataMap == nil {
		dataMap = sh.newDataMap()
		fnMap[key.Fn] = dataMap
	}
	if old, ok := dataMap[key.Data]; ok {
		s.adjustMem(sh, at, -old.val.Size)
		if old.hasTTL {
			// The old entry's heap item goes stale and is discarded (and
			// recycled) when popped or compacted; free its payload now.
			old.val = dataflow.Value{}
			sh.ttlStale++
		} else {
			sh.recycleEntry(old)
		}
	}
	// A TTL-spilled copy of the same key is superseded too; without this a
	// re-put would leave the stale value servable from disk (and its bytes
	// double-counted) until request teardown.
	if reqDisk := sh.disk[key.ReqID]; reqDisk != nil {
		if old, ok := reqDisk[key]; ok {
			delete(reqDisk, key)
			if len(reqDisk) == 0 {
				delete(sh.disk, key.ReqID)
			}
			s.diskBytes.Add(-old.val.Size)
			sh.recycleEntry(old) // spilled entries hold no heap skeleton
		}
	}
	e := sh.newEntry(key, v, consumers)
	if s.opts.TTL > 0 {
		e.expiresAt = at + s.opts.TTL
		e.hasTTL = true
		sh.ttl.push(e)
	}
	dataMap[key.Data] = e
	s.adjustMem(sh, at, v.Size)
}

// PutReq is one datum of a PutBatch.
type PutReq struct {
	Key       Key
	Val       dataflow.Value
	Consumers int
}

// PutBatch caches every req at time at — the multi-put half of the DLU
// shipment batcher. Keys are grouped by lock stripe and each stripe is
// locked exactly once for all of its keys, paying one lock acquisition, one
// expiry pass and one compaction check where per-item Puts pay one of each
// per key. Equivalent to calling Put for every req: stripes are
// independent, and within a stripe the batch's order is preserved.
func (s *Sink) PutBatch(at time.Duration, reqs []PutReq) {
	if len(reqs) == 0 {
		return
	}
	// Precompute stripe indices; typical DLU batches fit the stack scratch.
	var inline [64]uint32
	var idx []uint32
	if len(reqs) <= len(inline) {
		idx = inline[:len(reqs)]
	} else {
		idx = make([]uint32, len(reqs))
	}
	for i := range reqs {
		idx[i] = s.shardIdx(reqs[i].Key)
	}
	const claimed = ^uint32(0) // never a stripe index (mask < 2^31)
	for i := range reqs {
		si := idx[i]
		if si == claimed {
			continue
		}
		sh := &s.shards[si]
		sh.mu.Lock()
		s.expireLocked(sh, at)
		for j := i; j < len(reqs); j++ {
			if idx[j] != si {
				continue
			}
			idx[j] = claimed
			s.putLocked(sh, at, reqs[j].Key, reqs[j].Val, reqs[j].Consumers)
		}
		sh.maybeCompactTTL()
		sh.mu.Unlock()
	}
}

// Get fetches the datum for key, counting one consumer. It returns the
// value, the tier it was served from, and whether it was found.
func (s *Sink) Get(at time.Duration, key Key) (dataflow.Value, Tier, bool) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.expireLocked(sh, at)
	if dataMap := sh.fnMap(key); dataMap != nil {
		if e, ok := dataMap[key.Data]; ok {
			sh.stats.MemHits++
			obsMemHits.Inc(sh.obsStripe)
			e.remaining--
			val := e.val
			if e.remaining <= 0 && !s.opts.DisableProactive {
				if s.opts.RetainInFlight {
					// Replay retention: the entry's consumers are done, but
					// the request is not — keep the payload resident so a
					// node failure downstream can re-execute this consumer
					// from its original inputs. ReleaseRequest reclaims it.
					if e.remaining == 0 {
						sh.stats.Retained++
						obsRetained.Inc(sh.obsStripe)
					}
					return val, Memory, true
				}
				delete(dataMap, key.Data)
				s.adjustMem(sh, at, -val.Size)
				sh.stats.ProactiveReleases++
				obsProactive.Inc(sh.obsStripe)
				sh.gcEmpty(key)
				if e.hasTTL {
					// The entry sits in the expiry heap until its TTL fires
					// or a compaction sweeps it; drop the payload now so
					// only the skeleton (the identity the lazy-discard
					// check needs) stays pinned. The pop recycles it.
					e.val = dataflow.Value{}
					sh.ttlStale++
				} else {
					sh.recycleEntry(e)
				}
			}
			return val, Memory, true
		}
	}
	if reqDisk := sh.disk[key.ReqID]; reqDisk != nil {
		if e, ok := reqDisk[key]; ok {
			sh.stats.DiskHits++
			obsDiskHits.Inc(sh.obsStripe)
			e.remaining--
			val := e.val
			if e.remaining <= 0 && !s.opts.DisableProactive {
				if s.opts.RetainInFlight {
					if e.remaining == 0 {
						sh.stats.Retained++
						obsRetained.Inc(sh.obsStripe)
					}
					return val, Disk, true
				}
				delete(reqDisk, key)
				if len(reqDisk) == 0 {
					delete(sh.disk, key.ReqID)
				}
				s.diskBytes.Add(-val.Size)
				sh.recycleEntry(e) // spilled entries hold no heap skeleton
			}
			return val, Disk, true
		}
	}
	sh.stats.Misses++
	obsMisses.Inc(sh.obsStripe)
	return dataflow.Value{}, Miss, false
}

// Peek returns the value without consuming it.
func (s *Sink) Peek(at time.Duration, key Key) (dataflow.Value, Tier, bool) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.expireLocked(sh, at)
	if dataMap := sh.fnMap(key); dataMap != nil {
		if e, ok := dataMap[key.Data]; ok {
			return e.val, Memory, true
		}
	}
	if reqDisk := sh.disk[key.ReqID]; reqDisk != nil {
		if e, ok := reqDisk[key]; ok {
			return e.val, Disk, true
		}
	}
	return dataflow.Value{}, Miss, false
}

// ReleaseRequest drops every entry of a request from both tiers (end-of-
// request cleanup; the control-flow baselines use this as their only release
// point, and core.Invocation teardown drives it as the spill tier's GC).
// Cost is O(shards + entries of the request): the spill tier is indexed by
// request, so other requests' entries are never scanned.
func (s *Sink) ReleaseRequest(at time.Duration, reqID string) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		// Since we're visiting every stripe anyway, apply pending
		// expirations: this bounds how long a past-TTL entry on a quiet
		// shard can stay charged to the memory tier by the inter-request
		// gap (sink-wide), not by that shard's own access gap.
		s.expireLocked(sh, at)
		if fnMap, ok := sh.mem[reqID]; ok {
			for _, dataMap := range fnMap {
				for _, e := range dataMap {
					s.adjustMem(sh, at, -e.val.Size)
					if e.hasTTL {
						e.val = dataflow.Value{} // heap-pinned until popped
						sh.ttlStale++
					} else {
						sh.recycleEntry(e)
					}
				}
				sh.recycleDataMap(dataMap)
			}
			delete(sh.mem, reqID)
			sh.recycleFnMap(fnMap)
		}
		if reqDisk, ok := sh.disk[reqID]; ok {
			for _, e := range reqDisk {
				s.diskBytes.Add(-e.val.Size)
				sh.recycleEntry(e) // spilled entries hold no heap skeleton
			}
			delete(sh.disk, reqID)
		}
		sh.mu.Unlock()
	}
}

// Clear wipes both tiers of the sink — the data loss of a node failure.
// Counters (Stats) survive as the node's cumulative history; occupancy
// gauges and integrals record the drop at time at. The sink remains usable
// afterwards (a recovered node restarts with an empty Wait-Match Memory).
func (s *Sink) Clear(at time.Duration) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.memBytes != 0 {
			s.adjustMem(sh, at, -sh.memBytes)
		}
		sh.mem = make(map[string]map[string]map[string]*entry)
		for _, reqDisk := range sh.disk {
			for _, e := range reqDisk {
				s.diskBytes.Add(-e.val.Size)
			}
		}
		sh.disk = make(map[string]map[Key]*entry)
		for j := range sh.ttl {
			sh.ttl[j] = nil
		}
		sh.ttl = sh.ttl[:0]
		sh.ttlStale = 0
		sh.mu.Unlock()
	}
}

// ExpireSweep runs the passive-expire policy on every shard at time at and
// returns how many entries expired (spilled to disk or, when already fully
// consumed, dropped).
func (s *Sink) ExpireSweep(at time.Duration) int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += s.expireLocked(sh, at)
		sh.mu.Unlock()
	}
	return n
}

// MemBytes returns current memory-tier occupancy in bytes.
func (s *Sink) MemBytes() int64 { return s.memBytes.Load() }

// DiskBytes returns current spill-tier occupancy in bytes.
func (s *Sink) DiskBytes() int64 { return s.diskBytes.Load() }

// MemIntegralMBs returns the memory occupancy integral in MB·s up to at.
// Pending expirations are applied first so entries past their TTL are
// charged to the spill tier, then the per-shard integrals (which sum
// exactly to the whole-sink integral) are extended to at and merged.
func (s *Sink) MemIntegralMBs(at time.Duration) float64 {
	total := 0.0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		s.expireLocked(sh, at)
		total += sh.memInt.Finish(at)
		sh.mu.Unlock()
	}
	return total
}

// Stats returns a snapshot of the counters, merged across shards.
func (s *Sink) Stats() Stats {
	var out Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out.Merge(sh.stats)
		sh.mu.Unlock()
	}
	out.PeakMemBytes = s.peakMem.Load()
	return out
}

// Len returns the number of memory-tier entries (for tests).
func (s *Sink) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, fnMap := range sh.mem {
			for _, dataMap := range fnMap {
				n += len(dataMap)
			}
		}
		sh.mu.Unlock()
	}
	return n
}
