// Package wmm implements the Wait-Match Memory: the per-node data sink of
// DataFlower's host-container collaborative communication mechanism (§7).
//
// The sink temporarily caches a function's input data before the function is
// triggered, indexed by the multi-level key (RequestID, FunctionName,
// DataName) to keep lookups cheap in a large sink. Two policies bound its
// memory footprint:
//
//   - Proactive release: every entry knows how many destination FLUs will
//     consume it; once the last consumer has fetched the data the entry is
//     dropped immediately (control-flow caches such as FaaSFlow can only
//     drop at request completion because they lack data-dependency
//     knowledge).
//   - Passive expire: entries carry a TTL; on expiry they are persisted to
//     the function-exclusive disk (modelled as a second tier) and evicted
//     from memory. A later Get is served from disk and reports it, so
//     callers can charge the slower access.
//
// Timestamps are explicit time.Duration values so the same implementation
// serves both the wall-clock runtime plane and the virtual-time simulation
// plane. The sink is safe for concurrent use.
package wmm

import (
	"sync"
	"time"

	"repro/internal/dataflow"
	"repro/internal/metrics"
)

// Key is the multi-level index of one datum.
type Key struct {
	ReqID string
	Fn    string // destination function
	Data  string // data name (input slot, possibly instance-qualified)
}

// Tier identifies where a Get was served from.
type Tier int

// Tiers.
const (
	Miss Tier = iota
	Memory
	Disk
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case Memory:
		return "memory"
	case Disk:
		return "disk"
	default:
		return "miss"
	}
}

// Options configures a Sink.
type Options struct {
	// TTL is the passive-expire timeout. Zero disables passive expiry.
	TTL time.Duration
	// DisableProactive turns off proactive release (for ablations).
	DisableProactive bool
}

// Stats are cumulative sink counters.
type Stats struct {
	Puts              int64
	MemHits           int64
	DiskHits          int64
	Misses            int64
	ProactiveReleases int64
	Expirations       int64
	PeakMemBytes      int64
}

type entry struct {
	val       dataflow.Value
	remaining int // consumers still to fetch
	expiresAt time.Duration
	hasTTL    bool
}

// Sink is one node's Wait-Match Memory plus its spill tier.
type Sink struct {
	mu    sync.Mutex
	opts  Options
	mem   map[string]map[string]map[string]*entry // reqID -> fn -> data
	disk  map[Key]*entry
	stats Stats

	memBytes  int64
	diskBytes int64
	memInt    *metrics.Integral // MB·s of memory occupancy
}

// NewSink returns an empty sink.
func NewSink(opts Options) *Sink {
	return &Sink{
		opts:   opts,
		mem:    make(map[string]map[string]map[string]*entry),
		disk:   make(map[Key]*entry),
		memInt: metrics.NewIntegral(),
	}
}

// Put caches v for key at virtual/wall time at. consumers is the number of
// destination FLUs that will fetch the datum (>=1); once they all have, the
// entry is proactively released. Re-putting an existing key replaces it.
func (s *Sink) Put(at time.Duration, key Key, v dataflow.Value, consumers int) {
	if consumers < 1 {
		consumers = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(at)
	s.stats.Puts++
	fnMap := s.mem[key.ReqID]
	if fnMap == nil {
		fnMap = make(map[string]map[string]*entry)
		s.mem[key.ReqID] = fnMap
	}
	dataMap := fnMap[key.Fn]
	if dataMap == nil {
		dataMap = make(map[string]*entry)
		fnMap[key.Fn] = dataMap
	}
	if old, ok := dataMap[key.Data]; ok {
		s.adjustMem(at, -old.val.Size)
	}
	e := &entry{val: v, remaining: consumers}
	if s.opts.TTL > 0 {
		e.expiresAt = at + s.opts.TTL
		e.hasTTL = true
	}
	dataMap[key.Data] = e
	s.adjustMem(at, v.Size)
}

// Get fetches the datum for key, counting one consumer. It returns the
// value, the tier it was served from, and whether it was found.
func (s *Sink) Get(at time.Duration, key Key) (dataflow.Value, Tier, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(at)
	if dataMap := s.fnMap(key); dataMap != nil {
		if e, ok := dataMap[key.Data]; ok {
			s.stats.MemHits++
			e.remaining--
			if e.remaining <= 0 && !s.opts.DisableProactive {
				delete(dataMap, key.Data)
				s.adjustMem(at, -e.val.Size)
				s.stats.ProactiveReleases++
				s.gcEmpty(key)
			}
			return e.val, Memory, true
		}
	}
	if e, ok := s.disk[key]; ok {
		s.stats.DiskHits++
		e.remaining--
		if e.remaining <= 0 && !s.opts.DisableProactive {
			delete(s.disk, key)
			s.diskBytes -= e.val.Size
		}
		return e.val, Disk, true
	}
	s.stats.Misses++
	return dataflow.Value{}, Miss, false
}

// Peek returns the value without consuming it.
func (s *Sink) Peek(at time.Duration, key Key) (dataflow.Value, Tier, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(at)
	if dataMap := s.fnMap(key); dataMap != nil {
		if e, ok := dataMap[key.Data]; ok {
			return e.val, Memory, true
		}
	}
	if e, ok := s.disk[key]; ok {
		return e.val, Disk, true
	}
	return dataflow.Value{}, Miss, false
}

// ReleaseRequest drops every entry of a request from both tiers (end-of-
// request cleanup; the control-flow baselines use this as their only release
// point).
func (s *Sink) ReleaseRequest(at time.Duration, reqID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fnMap, ok := s.mem[reqID]; ok {
		for _, dataMap := range fnMap {
			for _, e := range dataMap {
				s.adjustMem(at, -e.val.Size)
			}
		}
		delete(s.mem, reqID)
	}
	for k, e := range s.disk {
		if k.ReqID == reqID {
			s.diskBytes -= e.val.Size
			delete(s.disk, k)
		}
	}
}

// ExpireSweep runs the passive-expire policy at time at and returns how many
// entries were spilled to disk.
func (s *Sink) ExpireSweep(at time.Duration) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expireLocked(at)
}

// expireLocked moves TTL-exceeded entries from memory to the spill tier.
func (s *Sink) expireLocked(at time.Duration) int {
	if s.opts.TTL <= 0 {
		return 0
	}
	n := 0
	for reqID, fnMap := range s.mem {
		for fn, dataMap := range fnMap {
			for data, e := range dataMap {
				if !e.hasTTL || e.expiresAt > at {
					continue
				}
				delete(dataMap, data)
				s.adjustMem(at, -e.val.Size)
				s.disk[Key{ReqID: reqID, Fn: fn, Data: data}] = e
				s.diskBytes += e.val.Size
				s.stats.Expirations++
				n++
			}
			if len(dataMap) == 0 {
				delete(fnMap, fn)
			}
		}
		if len(fnMap) == 0 {
			delete(s.mem, reqID)
		}
	}
	return n
}

func (s *Sink) fnMap(key Key) map[string]*entry {
	fnMap := s.mem[key.ReqID]
	if fnMap == nil {
		return nil
	}
	return fnMap[key.Fn]
}

func (s *Sink) gcEmpty(key Key) {
	fnMap := s.mem[key.ReqID]
	if fnMap == nil {
		return
	}
	if dataMap := fnMap[key.Fn]; dataMap != nil && len(dataMap) == 0 {
		delete(fnMap, key.Fn)
	}
	if len(fnMap) == 0 {
		delete(s.mem, key.ReqID)
	}
}

func (s *Sink) adjustMem(at time.Duration, delta int64) {
	s.memBytes += delta
	if s.memBytes > s.stats.PeakMemBytes {
		s.stats.PeakMemBytes = s.memBytes
	}
	s.memInt.Set(at, metrics.BytesToMB(s.memBytes))
}

// MemBytes returns current memory-tier occupancy in bytes.
func (s *Sink) MemBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memBytes
}

// DiskBytes returns current spill-tier occupancy in bytes.
func (s *Sink) DiskBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.diskBytes
}

// MemIntegralMBs returns the memory occupancy integral in MB·s up to at.
func (s *Sink) MemIntegralMBs(at time.Duration) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memInt.Finish(at)
}

// Stats returns a snapshot of the counters.
func (s *Sink) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len returns the number of memory-tier entries (for tests).
func (s *Sink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, fnMap := range s.mem {
		for _, dataMap := range fnMap {
			n += len(dataMap)
		}
	}
	return n
}
