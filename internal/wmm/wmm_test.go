package wmm

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dataflow"
)

func v(size int64) dataflow.Value { return dataflow.Value{Size: size, Payload: size} }

func k(req, fn, data string) Key { return Key{ReqID: req, Fn: fn, Data: data} }

func TestPutGetMemory(t *testing.T) {
	s := NewSink(Options{})
	s.Put(0, k("r1", "f", "x"), v(100), 1)
	got, tier, ok := s.Get(time.Second, k("r1", "f", "x"))
	if !ok || tier != Memory || got.Size != 100 {
		t.Fatalf("get = %v %v %v", got, tier, ok)
	}
}

func TestGetMiss(t *testing.T) {
	s := NewSink(Options{})
	_, tier, ok := s.Get(0, k("r1", "f", "x"))
	if ok || tier != Miss {
		t.Fatalf("expected miss, got %v %v", tier, ok)
	}
	if s.Stats().Misses != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestProactiveReleaseSingleConsumer(t *testing.T) {
	s := NewSink(Options{})
	s.Put(0, k("r1", "f", "x"), v(100), 1)
	if s.MemBytes() != 100 {
		t.Fatalf("mem = %d", s.MemBytes())
	}
	s.Get(0, k("r1", "f", "x"))
	if s.MemBytes() != 0 {
		t.Fatalf("mem = %d after last consumer", s.MemBytes())
	}
	if s.Len() != 0 {
		t.Fatal("entry not released")
	}
	if s.Stats().ProactiveReleases != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	// Second get misses: the data is gone.
	if _, _, ok := s.Get(0, k("r1", "f", "x")); ok {
		t.Fatal("released entry still served")
	}
}

func TestProactiveReleaseMultiConsumer(t *testing.T) {
	s := NewSink(Options{})
	s.Put(0, k("r1", "f", "x"), v(100), 3)
	for i := 0; i < 2; i++ {
		if _, _, ok := s.Get(0, k("r1", "f", "x")); !ok {
			t.Fatalf("consumer %d missed", i)
		}
		if s.MemBytes() != 100 {
			t.Fatalf("released before last consumer (mem=%d)", s.MemBytes())
		}
	}
	s.Get(0, k("r1", "f", "x"))
	if s.MemBytes() != 0 {
		t.Fatal("not released after last consumer")
	}
}

func TestDisableProactive(t *testing.T) {
	s := NewSink(Options{DisableProactive: true})
	s.Put(0, k("r1", "f", "x"), v(100), 1)
	s.Get(0, k("r1", "f", "x"))
	if s.MemBytes() != 100 {
		t.Fatal("proactive release ran despite being disabled")
	}
	s.ReleaseRequest(time.Second, "r1")
	if s.MemBytes() != 0 {
		t.Fatal("ReleaseRequest did not clean up")
	}
}

func TestPassiveExpireSpillsToDisk(t *testing.T) {
	s := NewSink(Options{TTL: 10 * time.Second})
	s.Put(0, k("r1", "f", "x"), v(100), 1)
	s.ExpireSweep(5 * time.Second)
	if s.MemBytes() != 100 || s.DiskBytes() != 0 {
		t.Fatal("expired before TTL")
	}
	n := s.ExpireSweep(10 * time.Second)
	if n != 1 || s.MemBytes() != 0 || s.DiskBytes() != 100 {
		t.Fatalf("expire: n=%d mem=%d disk=%d", n, s.MemBytes(), s.DiskBytes())
	}
	got, tier, ok := s.Get(11*time.Second, k("r1", "f", "x"))
	if !ok || tier != Disk || got.Size != 100 {
		t.Fatalf("disk get = %v %v %v", got, tier, ok)
	}
	if s.DiskBytes() != 0 {
		t.Fatal("disk entry not released after last consumer")
	}
}

func TestExpireRunsLazilyOnAccess(t *testing.T) {
	s := NewSink(Options{TTL: time.Second})
	s.Put(0, k("r1", "f", "x"), v(50), 1)
	// No explicit sweep: the access itself applies the pending expiry, so a
	// late consumer is served from the spill tier and charged accordingly.
	got, tier, ok := s.Peek(time.Minute, k("r1", "f", "x"))
	if !ok || tier != Disk || got.Size != 50 {
		t.Fatalf("peek = %v %v %v, want disk hit", got, tier, ok)
	}
	if s.DiskBytes() != 50 || s.MemBytes() != 0 {
		t.Fatalf("disk = %d mem = %d, want 50/0 (x spilled)", s.DiskBytes(), s.MemBytes())
	}
}

func TestNoTTLNeverExpires(t *testing.T) {
	s := NewSink(Options{})
	s.Put(0, k("r1", "f", "x"), v(50), 1)
	s.ExpireSweep(time.Hour)
	if s.MemBytes() != 50 || s.DiskBytes() != 0 {
		t.Fatal("entry expired without a TTL")
	}
}

func TestReleaseRequestDropsBothTiers(t *testing.T) {
	s := NewSink(Options{TTL: time.Second})
	s.Put(0, k("r1", "f", "x"), v(50), 1)
	s.Put(0, k("r2", "f", "x"), v(70), 1)
	s.ExpireSweep(2 * time.Second) // both spill
	s.Put(3*time.Second, k("r1", "f", "y"), v(20), 1)
	s.ReleaseRequest(4*time.Second, "r1")
	if s.DiskBytes() != 70 {
		t.Fatalf("disk = %d, want only r2's 70", s.DiskBytes())
	}
	if s.MemBytes() != 0 {
		t.Fatalf("mem = %d", s.MemBytes())
	}
}

// Regression: spilled entries must leave the disk tier once the last
// consumer has fetched them — diskBytes returns to 0 with no explicit
// sweep or request teardown needed.
func TestDiskReleasedAfterAllConsumersFetch(t *testing.T) {
	s := NewSink(Options{TTL: time.Second})
	s.Put(0, k("r1", "f", "x"), v(100), 3)
	if n := s.ExpireSweep(2 * time.Second); n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	if s.DiskBytes() != 100 {
		t.Fatalf("disk = %d, want 100", s.DiskBytes())
	}
	for i := 0; i < 3; i++ {
		_, tier, ok := s.Get(3*time.Second, k("r1", "f", "x"))
		if !ok || tier != Disk {
			t.Fatalf("consumer %d: tier=%v ok=%v", i, tier, ok)
		}
	}
	if s.DiskBytes() != 0 {
		t.Fatalf("disk = %d after all consumers fetched, want 0", s.DiskBytes())
	}
}

// Regression: with DisableProactive a fully-consumed memory entry used to be
// spilled at expiry and then sit on disk until request teardown — in a
// long-running system that never tears the request down, the spill tier grew
// without bound. Such entries are dropped at expiry instead.
func TestFullyConsumedEntryDroppedAtExpiry(t *testing.T) {
	s := NewSink(Options{TTL: time.Second, DisableProactive: true})
	s.Put(0, k("r1", "f", "x"), v(100), 1)
	s.Get(0, k("r1", "f", "x")) // last consumer; entry stays (proactive off)
	if s.MemBytes() != 100 {
		t.Fatalf("mem = %d, want entry retained under DisableProactive", s.MemBytes())
	}
	if n := s.ExpireSweep(2 * time.Second); n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	if s.MemBytes() != 0 || s.DiskBytes() != 0 {
		t.Fatalf("mem = %d disk = %d after expiry of consumed entry, want 0/0",
			s.MemBytes(), s.DiskBytes())
	}
	// A not-yet-consumed entry still spills normally.
	s.Put(3*time.Second, k("r1", "f", "y"), v(40), 1)
	s.ExpireSweep(5 * time.Second)
	if s.DiskBytes() != 40 {
		t.Fatalf("disk = %d, want unconsumed entry spilled", s.DiskBytes())
	}
	s.ReleaseRequest(6*time.Second, "r1")
	if s.DiskBytes() != 0 {
		t.Fatalf("disk = %d after ReleaseRequest, want 0", s.DiskBytes())
	}
}

// Regression: re-putting a key must supersede a TTL-spilled disk copy as
// well, or the stale value stays servable from disk (and double-counted)
// after the fresh one is consumed.
func TestPutSupersedesSpilledCopy(t *testing.T) {
	s := NewSink(Options{TTL: time.Second})
	s.Put(0, k("r1", "f", "x"), v(100), 1)
	s.ExpireSweep(2 * time.Second) // v1 spills to disk
	s.Put(3*time.Second, k("r1", "f", "x"), v(60), 1)
	if s.DiskBytes() != 0 {
		t.Fatalf("disk = %d after re-put, want stale copy dropped", s.DiskBytes())
	}
	got, tier, ok := s.Get(3*time.Second, k("r1", "f", "x"))
	if !ok || tier != Memory || got.Size != 60 {
		t.Fatalf("get = %v %v %v, want fresh 60B from memory", got, tier, ok)
	}
	if _, _, ok := s.Get(3*time.Second, k("r1", "f", "x")); ok {
		t.Fatal("released key still served (stale disk copy survived)")
	}
}

// Regression: an entry released from the maps can stay referenced by the
// expiry heap until its TTL fires; the payload must be dropped at release
// so only the entry skeleton stays pinned (with a 60s TTL and fast
// consumers, pinned payloads would otherwise dwarf the reported MemBytes).
func TestReleasedEntryPayloadUnpinned(t *testing.T) {
	s := NewSink(Options{TTL: time.Hour, Shards: 1})
	payload := make([]byte, 1024)
	key := k("r1", "f", "x")
	s.Put(0, key, dataflow.Value{Size: 1024, Payload: payload}, 1)
	s.Get(0, key) // proactive release; heap still holds the entry
	s.Put(0, k("r1", "f", "y"), dataflow.Value{Size: 8, Payload: payload}, 1)
	s.Put(0, k("r1", "f", "y"), dataflow.Value{Size: 8}, 1) // replace
	s.ReleaseRequest(0, "r1")                               // drops y
	sh := &s.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.ttl) != 3 {
		t.Fatalf("heap holds %d entries, want all 3 skeletons", len(sh.ttl))
	}
	for _, e := range sh.ttl {
		if e.val.Payload != nil || e.val.Size != 0 {
			t.Fatalf("entry %v still pins its payload: %+v", e.key, e.val)
		}
	}
}

// Regression: lazy heap deletion must not let stale skeletons accumulate
// for the whole TTL window — compaction keeps the heap proportional to the
// live entry count (without it, 200 consumed entries leave 200 skeletons
// pinned for an hour here).
func TestHeapCompactionBoundsStaleSkeletons(t *testing.T) {
	s := NewSink(Options{TTL: time.Hour, Shards: 1})
	for i := 0; i < 200; i++ {
		key := k("r", "f", fmt.Sprintf("d%d", i))
		s.Put(0, key, v(8), 1)
		s.Get(0, key) // consumed immediately; skeleton left in the heap
	}
	s.Put(0, k("r", "f", "fresh"), v(8), 1)
	sh := &s.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.ttl) > compactMinHeap {
		t.Fatalf("heap holds %d items, want compaction to keep it under %d",
			len(sh.ttl), compactMinHeap)
	}
	if sh.ttlStale > len(sh.ttl) {
		t.Fatalf("stale counter %d exceeds heap size %d", sh.ttlStale, len(sh.ttl))
	}
}

func TestShardsRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {1, 1}, {2, 2}, {5, 8}, {32, 32}, {33, 64},
	} {
		if got := NewSink(Options{Shards: tc.in}).Shards(); got != tc.want {
			t.Errorf("Shards(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	s := NewSink(Options{})
	s.Put(0, k("r1", "f", "x"), v(100), 1)
	if _, tier, ok := s.Peek(0, k("r1", "f", "x")); !ok || tier != Memory {
		t.Fatal("peek failed")
	}
	if s.MemBytes() != 100 {
		t.Fatal("peek consumed the entry")
	}
}

func TestReplacePutAdjustsAccounting(t *testing.T) {
	s := NewSink(Options{})
	s.Put(0, k("r1", "f", "x"), v(100), 1)
	s.Put(0, k("r1", "f", "x"), v(30), 1)
	if s.MemBytes() != 30 {
		t.Fatalf("mem = %d, want 30", s.MemBytes())
	}
}

func TestMemIntegral(t *testing.T) {
	s := NewSink(Options{})
	s.Put(0, k("r1", "f", "x"), v(1<<20), 1) // 1 MB
	s.Get(10*time.Second, k("r1", "f", "x"))
	got := s.MemIntegralMBs(10 * time.Second)
	if got < 9.9 || got > 10.1 {
		t.Fatalf("integral = %v MB·s, want ~10", got)
	}
}

func TestPeakTracking(t *testing.T) {
	s := NewSink(Options{})
	s.Put(0, k("r1", "f", "a"), v(100), 1)
	s.Put(0, k("r1", "f", "b"), v(200), 1)
	s.Get(0, k("r1", "f", "a"))
	s.Get(0, k("r1", "f", "b"))
	if s.Stats().PeakMemBytes != 300 {
		t.Fatalf("peak = %d, want 300", s.Stats().PeakMemBytes)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewSink(Options{TTL: time.Minute})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := k(fmt.Sprintf("r%d", g), "f", fmt.Sprintf("d%d", i))
				s.Put(time.Duration(i)*time.Millisecond, key, v(10), 1)
				if _, _, ok := s.Get(time.Duration(i)*time.Millisecond, key); !ok {
					t.Errorf("lost own datum %v", key)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.MemBytes() != 0 {
		t.Fatalf("mem = %d after all consumed", s.MemBytes())
	}
}

// Property: memory accounting is exact — after any interleaving of puts and
// full consumption, MemBytes returns to zero and never goes negative.
func TestAccountingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := NewSink(Options{})
		at := time.Duration(0)
		for i, sz := range sizes {
			key := k("r", "f", fmt.Sprintf("d%d", i))
			s.Put(at, key, v(int64(sz)+1), 1)
			if s.MemBytes() < 0 {
				return false
			}
			at += time.Millisecond
		}
		for i := range sizes {
			key := k("r", "f", fmt.Sprintf("d%d", i))
			if _, _, ok := s.Get(at, key); !ok {
				return false
			}
		}
		return s.MemBytes() == 0 && s.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a TTL, every entry is eventually either consumed from
// memory, or spilled and then consumable from disk — data is never lost.
func TestNoDataLossProperty(t *testing.T) {
	f := func(sizes []uint8, ttlMs uint8) bool {
		ttl := time.Duration(ttlMs%50+1) * time.Millisecond
		s := NewSink(Options{TTL: ttl})
		at := time.Duration(0)
		for i := range sizes {
			s.Put(at, k("r", "f", fmt.Sprintf("d%d", i)), v(int64(sizes[i])+1), 1)
			at += 7 * time.Millisecond
		}
		at += ttl * 2
		s.ExpireSweep(at)
		for i := range sizes {
			if _, _, ok := s.Get(at, k("r", "f", fmt.Sprintf("d%d", i))); !ok {
				return false
			}
		}
		return s.MemBytes() == 0 && s.DiskBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
