package wmm

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dataflow"
)

func v(size int64) dataflow.Value { return dataflow.Value{Size: size, Payload: size} }

func k(req, fn, data string) Key { return Key{ReqID: req, Fn: fn, Data: data} }

func TestPutGetMemory(t *testing.T) {
	s := NewSink(Options{})
	s.Put(0, k("r1", "f", "x"), v(100), 1)
	got, tier, ok := s.Get(time.Second, k("r1", "f", "x"))
	if !ok || tier != Memory || got.Size != 100 {
		t.Fatalf("get = %v %v %v", got, tier, ok)
	}
}

func TestGetMiss(t *testing.T) {
	s := NewSink(Options{})
	_, tier, ok := s.Get(0, k("r1", "f", "x"))
	if ok || tier != Miss {
		t.Fatalf("expected miss, got %v %v", tier, ok)
	}
	if s.Stats().Misses != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestProactiveReleaseSingleConsumer(t *testing.T) {
	s := NewSink(Options{})
	s.Put(0, k("r1", "f", "x"), v(100), 1)
	if s.MemBytes() != 100 {
		t.Fatalf("mem = %d", s.MemBytes())
	}
	s.Get(0, k("r1", "f", "x"))
	if s.MemBytes() != 0 {
		t.Fatalf("mem = %d after last consumer", s.MemBytes())
	}
	if s.Len() != 0 {
		t.Fatal("entry not released")
	}
	if s.Stats().ProactiveReleases != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	// Second get misses: the data is gone.
	if _, _, ok := s.Get(0, k("r1", "f", "x")); ok {
		t.Fatal("released entry still served")
	}
}

func TestProactiveReleaseMultiConsumer(t *testing.T) {
	s := NewSink(Options{})
	s.Put(0, k("r1", "f", "x"), v(100), 3)
	for i := 0; i < 2; i++ {
		if _, _, ok := s.Get(0, k("r1", "f", "x")); !ok {
			t.Fatalf("consumer %d missed", i)
		}
		if s.MemBytes() != 100 {
			t.Fatalf("released before last consumer (mem=%d)", s.MemBytes())
		}
	}
	s.Get(0, k("r1", "f", "x"))
	if s.MemBytes() != 0 {
		t.Fatal("not released after last consumer")
	}
}

func TestDisableProactive(t *testing.T) {
	s := NewSink(Options{DisableProactive: true})
	s.Put(0, k("r1", "f", "x"), v(100), 1)
	s.Get(0, k("r1", "f", "x"))
	if s.MemBytes() != 100 {
		t.Fatal("proactive release ran despite being disabled")
	}
	s.ReleaseRequest(time.Second, "r1")
	if s.MemBytes() != 0 {
		t.Fatal("ReleaseRequest did not clean up")
	}
}

func TestPassiveExpireSpillsToDisk(t *testing.T) {
	s := NewSink(Options{TTL: 10 * time.Second})
	s.Put(0, k("r1", "f", "x"), v(100), 1)
	s.ExpireSweep(5 * time.Second)
	if s.MemBytes() != 100 || s.DiskBytes() != 0 {
		t.Fatal("expired before TTL")
	}
	n := s.ExpireSweep(10 * time.Second)
	if n != 1 || s.MemBytes() != 0 || s.DiskBytes() != 100 {
		t.Fatalf("expire: n=%d mem=%d disk=%d", n, s.MemBytes(), s.DiskBytes())
	}
	got, tier, ok := s.Get(11*time.Second, k("r1", "f", "x"))
	if !ok || tier != Disk || got.Size != 100 {
		t.Fatalf("disk get = %v %v %v", got, tier, ok)
	}
	if s.DiskBytes() != 0 {
		t.Fatal("disk entry not released after last consumer")
	}
}

func TestExpireRunsLazilyOnAccess(t *testing.T) {
	s := NewSink(Options{TTL: time.Second})
	s.Put(0, k("r1", "f", "x"), v(50), 1)
	// A Put far in the future triggers the sweep implicitly.
	s.Put(time.Minute, k("r1", "f", "y"), v(10), 1)
	if s.DiskBytes() != 50 {
		t.Fatalf("disk = %d, want 50 (x spilled)", s.DiskBytes())
	}
}

func TestNoTTLNeverExpires(t *testing.T) {
	s := NewSink(Options{})
	s.Put(0, k("r1", "f", "x"), v(50), 1)
	s.ExpireSweep(time.Hour)
	if s.MemBytes() != 50 || s.DiskBytes() != 0 {
		t.Fatal("entry expired without a TTL")
	}
}

func TestReleaseRequestDropsBothTiers(t *testing.T) {
	s := NewSink(Options{TTL: time.Second})
	s.Put(0, k("r1", "f", "x"), v(50), 1)
	s.Put(0, k("r2", "f", "x"), v(70), 1)
	s.ExpireSweep(2 * time.Second) // both spill
	s.Put(3*time.Second, k("r1", "f", "y"), v(20), 1)
	s.ReleaseRequest(4*time.Second, "r1")
	if s.DiskBytes() != 70 {
		t.Fatalf("disk = %d, want only r2's 70", s.DiskBytes())
	}
	if s.MemBytes() != 0 {
		t.Fatalf("mem = %d", s.MemBytes())
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	s := NewSink(Options{})
	s.Put(0, k("r1", "f", "x"), v(100), 1)
	if _, tier, ok := s.Peek(0, k("r1", "f", "x")); !ok || tier != Memory {
		t.Fatal("peek failed")
	}
	if s.MemBytes() != 100 {
		t.Fatal("peek consumed the entry")
	}
}

func TestReplacePutAdjustsAccounting(t *testing.T) {
	s := NewSink(Options{})
	s.Put(0, k("r1", "f", "x"), v(100), 1)
	s.Put(0, k("r1", "f", "x"), v(30), 1)
	if s.MemBytes() != 30 {
		t.Fatalf("mem = %d, want 30", s.MemBytes())
	}
}

func TestMemIntegral(t *testing.T) {
	s := NewSink(Options{})
	s.Put(0, k("r1", "f", "x"), v(1<<20), 1) // 1 MB
	s.Get(10*time.Second, k("r1", "f", "x"))
	got := s.MemIntegralMBs(10 * time.Second)
	if got < 9.9 || got > 10.1 {
		t.Fatalf("integral = %v MB·s, want ~10", got)
	}
}

func TestPeakTracking(t *testing.T) {
	s := NewSink(Options{})
	s.Put(0, k("r1", "f", "a"), v(100), 1)
	s.Put(0, k("r1", "f", "b"), v(200), 1)
	s.Get(0, k("r1", "f", "a"))
	s.Get(0, k("r1", "f", "b"))
	if s.Stats().PeakMemBytes != 300 {
		t.Fatalf("peak = %d, want 300", s.Stats().PeakMemBytes)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewSink(Options{TTL: time.Minute})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := k(fmt.Sprintf("r%d", g), "f", fmt.Sprintf("d%d", i))
				s.Put(time.Duration(i)*time.Millisecond, key, v(10), 1)
				if _, _, ok := s.Get(time.Duration(i)*time.Millisecond, key); !ok {
					t.Errorf("lost own datum %v", key)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.MemBytes() != 0 {
		t.Fatalf("mem = %d after all consumed", s.MemBytes())
	}
}

// Property: memory accounting is exact — after any interleaving of puts and
// full consumption, MemBytes returns to zero and never goes negative.
func TestAccountingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := NewSink(Options{})
		at := time.Duration(0)
		for i, sz := range sizes {
			key := k("r", "f", fmt.Sprintf("d%d", i))
			s.Put(at, key, v(int64(sz)+1), 1)
			if s.MemBytes() < 0 {
				return false
			}
			at += time.Millisecond
		}
		for i := range sizes {
			key := k("r", "f", fmt.Sprintf("d%d", i))
			if _, _, ok := s.Get(at, key); !ok {
				return false
			}
		}
		return s.MemBytes() == 0 && s.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a TTL, every entry is eventually either consumed from
// memory, or spilled and then consumable from disk — data is never lost.
func TestNoDataLossProperty(t *testing.T) {
	f := func(sizes []uint8, ttlMs uint8) bool {
		ttl := time.Duration(ttlMs%50+1) * time.Millisecond
		s := NewSink(Options{TTL: ttl})
		at := time.Duration(0)
		for i := range sizes {
			s.Put(at, k("r", "f", fmt.Sprintf("d%d", i)), v(int64(sizes[i])+1), 1)
			at += 7 * time.Millisecond
		}
		at += ttl * 2
		s.ExpireSweep(at)
		for i := range sizes {
			if _, _, ok := s.Get(at, k("r", "f", fmt.Sprintf("d%d", i))); !ok {
				return false
			}
		}
		return s.MemBytes() == 0 && s.DiskBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
