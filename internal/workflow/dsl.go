package workflow

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseDSL parses the workflow definition language, a line-oriented
// rendering of the paper's Figure 7 declaration:
//
//	# WordCount: FOREACH fan-out, MERGE fan-in
//	workflow wordcount
//
//	function start
//	  input src from $USER
//	  output filelist type FOREACH to count.file
//
//	function count
//	  input file
//	  output result type MERGE to merge.counts
//
//	function merge
//	  input counts type LIST
//	  output out to $USER
//
// Rules:
//   - `workflow <name>` must appear once, before any function.
//   - `function <name>` opens a function block.
//   - `input <name> [type NORMAL|LIST] [from $USER]` declares an input.
//   - `output <name> [type NORMAL|FOREACH|MERGE|SWITCH] to <dest>[, <dest>…]`
//     declares an output; dest is `function.input` or `$USER`.
//   - `#` starts a comment; blank lines and indentation are insignificant.
//
// The parsed workflow is validated before being returned.
func ParseDSL(r io.Reader) (*Workflow, error) {
	var w *Workflow
	var cur *Function
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	fail := func(format string, args ...any) error {
		return fmt.Errorf("dsl line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	flush := func() error {
		if cur == nil {
			return nil
		}
		if err := w.AddFunction(cur); err != nil {
			return fail("%v", err)
		}
		cur = nil
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "workflow":
			if w != nil {
				return nil, fail("duplicate workflow declaration")
			}
			if len(fields) != 2 {
				return nil, fail("usage: workflow <name>")
			}
			w = New(fields[1])
		case "function":
			if w == nil {
				return nil, fail("function before workflow declaration")
			}
			if len(fields) != 2 {
				return nil, fail("usage: function <name>")
			}
			if err := flush(); err != nil {
				return nil, err
			}
			cur = &Function{Name: fields[1]}
		case "input":
			if cur == nil {
				return nil, fail("input outside function block")
			}
			in, err := parseInput(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			cur.Inputs = append(cur.Inputs, in)
		case "output":
			if cur == nil {
				return nil, fail("output outside function block")
			}
			out, err := parseOutput(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			cur.Outputs = append(cur.Outputs, out)
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dsl: %w", err)
	}
	if w == nil {
		return nil, fmt.Errorf("dsl: no workflow declaration")
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("dsl: invalid workflow: %w", err)
	}
	return w, nil
}

// ParseDSLString is ParseDSL over a string.
func ParseDSLString(s string) (*Workflow, error) {
	return ParseDSL(strings.NewReader(s))
}

// parseInput parses `<name> [type K] [from $USER]`.
func parseInput(fields []string) (Input, error) {
	if len(fields) == 0 {
		return Input{}, fmt.Errorf("input: missing name")
	}
	in := Input{Name: fields[0]}
	rest := fields[1:]
	for len(rest) > 0 {
		switch rest[0] {
		case "type":
			if len(rest) < 2 {
				return Input{}, fmt.Errorf("input %s: type requires a value", in.Name)
			}
			k, err := ParseEdgeKind(rest[1])
			if err != nil {
				return Input{}, err
			}
			in.Kind = k
			rest = rest[2:]
		case "from":
			if len(rest) < 2 || rest[1] != UserSource {
				return Input{}, fmt.Errorf("input %s: only `from %s` is supported", in.Name, UserSource)
			}
			in.FromUser = true
			rest = rest[2:]
		default:
			return Input{}, fmt.Errorf("input %s: unexpected token %q", in.Name, rest[0])
		}
	}
	return in, nil
}

// parseOutput parses `<name> [type K] to <dest>[, <dest>…]`.
func parseOutput(fields []string) (Output, error) {
	if len(fields) == 0 {
		return Output{}, fmt.Errorf("output: missing name")
	}
	out := Output{Name: fields[0]}
	rest := fields[1:]
	for len(rest) > 0 {
		switch rest[0] {
		case "type":
			if len(rest) < 2 {
				return Output{}, fmt.Errorf("output %s: type requires a value", out.Name)
			}
			k, err := ParseEdgeKind(rest[1])
			if err != nil {
				return Output{}, err
			}
			out.Kind = k
			rest = rest[2:]
		case "to":
			// Everything after `to` is a comma-separated destination list,
			// possibly with spaces around commas.
			destStr := strings.Join(rest[1:], " ")
			for _, part := range strings.Split(destStr, ",") {
				part = strings.TrimSpace(part)
				if part == "" {
					continue
				}
				d, err := parseDest(part)
				if err != nil {
					return Output{}, fmt.Errorf("output %s: %v", out.Name, err)
				}
				out.Dests = append(out.Dests, d)
			}
			rest = nil
		default:
			return Output{}, fmt.Errorf("output %s: unexpected token %q", out.Name, rest[0])
		}
	}
	if len(out.Dests) == 0 {
		return Output{}, fmt.Errorf("output %s: missing `to <dest>`", out.Name)
	}
	return out, nil
}

// parseDest parses `function.input` or `$USER`.
func parseDest(s string) (Dest, error) {
	if s == UserSource {
		return Dest{Function: UserSource}, nil
	}
	i := strings.LastIndex(s, ".")
	if i <= 0 || i == len(s)-1 {
		return Dest{}, fmt.Errorf("bad destination %q (want function.input or %s)", s, UserSource)
	}
	return Dest{Function: s[:i], Input: s[i+1:]}, nil
}

// FormatDSL renders the workflow back into DSL text (round-trippable with
// ParseDSL for valid workflows).
func FormatDSL(w *Workflow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workflow %s\n", w.Name)
	for _, f := range w.Functions {
		fmt.Fprintf(&b, "\nfunction %s\n", f.Name)
		for _, in := range f.Inputs {
			fmt.Fprintf(&b, "  input %s", in.Name)
			if in.Kind != Normal {
				fmt.Fprintf(&b, " type %s", in.Kind)
			}
			if in.FromUser {
				fmt.Fprintf(&b, " from %s", UserSource)
			}
			b.WriteByte('\n')
		}
		for _, o := range f.Outputs {
			fmt.Fprintf(&b, "  output %s", o.Name)
			if o.Kind != Normal {
				fmt.Fprintf(&b, " type %s", o.Kind)
			}
			b.WriteString(" to ")
			for i, d := range o.Dests {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(d.String())
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
