package workflow

import (
	"strings"
	"testing"
)

const wordcountDSL = `
# WordCount: FOREACH fan-out, MERGE fan-in (paper Fig. 7)
workflow wordcount

function start
  input src from $USER
  output filelist type FOREACH to count.file

function count
  input file
  output result type MERGE to merge.counts

function merge
  input counts type LIST
  output out to $USER
`

func TestParseDSLWordCount(t *testing.T) {
	w, err := ParseDSLString(wordcountDSL)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "wordcount" || len(w.Functions) != 3 {
		t.Fatalf("parsed %q with %d functions", w.Name, len(w.Functions))
	}
	start, _ := w.Function("start")
	if !start.Inputs[0].FromUser {
		t.Fatal("start.src should be FromUser")
	}
	if start.Outputs[0].Kind != Foreach {
		t.Fatalf("start.filelist kind = %v", start.Outputs[0].Kind)
	}
	merge, _ := w.Function("merge")
	if merge.Inputs[0].Kind != List {
		t.Fatalf("merge.counts kind = %v", merge.Inputs[0].Kind)
	}
	if merge.Outputs[0].Dests[0].Function != UserSource {
		t.Fatal("merge.out should go to $USER")
	}
}

func TestParseDSLMultiDest(t *testing.T) {
	src := `
workflow fan
function a
  input in from $USER
  output o to b.x, c.x
function b
  input x
  output o to $USER
function c
  input x
  output o to $USER
`
	w, err := ParseDSLString(src)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := w.Function("a")
	if len(a.Outputs[0].Dests) != 2 {
		t.Fatalf("dests = %v", a.Outputs[0].Dests)
	}
}

func TestParseDSLSwitch(t *testing.T) {
	src := `
workflow sw
function gate
  input in from $USER
  output route type SWITCH to small.x, large.x
function small
  input x
  output o to $USER
function large
  input x
  output o to $USER
`
	w, err := ParseDSLString(src)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := w.Function("gate")
	if g.Outputs[0].Kind != Switch || len(g.Outputs[0].Dests) != 2 {
		t.Fatalf("switch output wrong: %+v", g.Outputs[0])
	}
}

func TestParseDSLErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no workflow", "function a\n", "before workflow"},
		{"empty", "", "no workflow declaration"},
		{"dup workflow", "workflow a\nworkflow b\n", "duplicate workflow"},
		{"bad directive", "workflow a\nbanana\n", "unknown directive"},
		{"input outside", "workflow a\ninput x\n", "outside function"},
		{"output outside", "workflow a\noutput x to $USER\n", "outside function"},
		{"bad dest", "workflow a\nfunction f\n  input i from $USER\n  output o to nodot\n", "bad destination"},
		{"missing to", "workflow a\nfunction f\n  input i from $USER\n  output o\n", "missing `to"},
		{"bad kind", "workflow a\nfunction f\n  input i type BANANA from $USER\n  output o to $USER\n", "unknown edge kind"},
		{"bad from", "workflow a\nfunction f\n  input i from elsewhere\n  output o to $USER\n", "from"},
		{"workflow usage", "workflow\n", "usage"},
		{"function usage", "workflow a\nfunction\n", "usage"},
		{"invalid graph", "workflow a\nfunction f\n  input i from $USER\n  output o to ghost.x\n", "ghost"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseDSLString(c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestParseDSLLineNumbers(t *testing.T) {
	src := "workflow a\nfunction f\n  input i from $USER\n  output o\n"
	_, err := ParseDSLString(src)
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("want line 4 in error, got %v", err)
	}
}

func TestFormatDSLRoundTrip(t *testing.T) {
	w1, err := ParseDSLString(wordcountDSL)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatDSL(w1)
	w2, err := ParseDSLString(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if FormatDSL(w2) != text {
		t.Fatalf("format not stable:\n%s\nvs\n%s", text, FormatDSL(w2))
	}
}

func TestParseDSLCommentsAndBlanks(t *testing.T) {
	src := `
# leading comment
workflow c   # trailing comment is not supported on directives without care

function f  # comment
  input i from $USER

  # interior comment
  output o to $USER
`
	// Note: "workflow c # trailing..." splits to >2 fields; strip comments first.
	w, err := ParseDSLString(src)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "c" {
		t.Fatalf("name = %q", w.Name)
	}
}
