package workflow

import (
	"encoding/json"
	"fmt"
)

// MarshalJSON encodes the edge kind as its DSL string.
func (k EdgeKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes an edge kind from its DSL string (or a bare int for
// backward compatibility).
func (k *EdgeKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, perr := ParseEdgeKind(s)
		if perr != nil {
			return perr
		}
		*k = v
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err == nil {
		if n < int(Normal) || n > int(List) {
			return fmt.Errorf("workflow: edge kind %d out of range", n)
		}
		*k = EdgeKind(n)
		return nil
	}
	return fmt.Errorf("workflow: cannot decode edge kind from %s", data)
}

// MarshalJSON encodes the workflow.
func (w *Workflow) MarshalJSON() ([]byte, error) {
	type alias struct {
		Name      string      `json:"name"`
		Functions []*Function `json:"functions"`
	}
	return json.Marshal(alias{Name: w.Name, Functions: w.Functions})
}

// UnmarshalJSON decodes and validates a workflow.
func (w *Workflow) UnmarshalJSON(data []byte) error {
	type alias struct {
		Name      string      `json:"name"`
		Functions []*Function `json:"functions"`
	}
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	w.Name = a.Name
	w.Functions = a.Functions
	w.index.Store(nil)
	w.reindex()
	return w.Validate()
}
