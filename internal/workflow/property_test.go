package workflow

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// genChainWorkflow builds a random valid linear workflow with optional
// fan-out stages, driven by a seeded RNG.
func genChainWorkflow(r *rand.Rand) *Workflow {
	w := New(fmt.Sprintf("gen%d", r.Intn(1000)))
	n := r.Intn(6) + 2 // 2..7 functions
	for i := 0; i < n; i++ {
		f := &Function{Name: fmt.Sprintf("f%d", i)}
		in := Input{Name: "in"}
		if i == 0 {
			in.FromUser = true
		}
		// A stage following a FOREACH producer needs a matching shape; keep
		// the chain NORMAL except one optional FOREACH/MERGE pair.
		f.Inputs = []Input{in}
		w.Functions = append(w.Functions, f)
	}
	// Wire chain.
	for i := 0; i < n; i++ {
		f := w.Functions[i]
		if i == n-1 {
			f.Outputs = []Output{{Name: "out", Dests: []Dest{{Function: UserSource}}}}
		} else {
			f.Outputs = []Output{{
				Name:  "out",
				Dests: []Dest{{Function: w.Functions[i+1].Name, Input: "in"}},
			}}
		}
	}
	// Optionally convert one interior hop into FOREACH -> MERGE -> LIST.
	if n >= 4 && r.Intn(2) == 0 {
		k := 1 + r.Intn(n-3) // producer index with at least 2 after it
		w.Functions[k].Outputs[0].Kind = Foreach
		w.Functions[k+1].Outputs[0].Kind = Merge
		w.Functions[k+2].Inputs[0].Kind = List
	}
	w.index.Store(nil)
	w.reindex()
	return w
}

// Property: generated workflows validate, topologically order all
// functions, and survive a DSL round trip losslessly.
func TestGeneratedWorkflowRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := genChainWorkflow(r)
		if err := w.Validate(); err != nil {
			t.Logf("seed %d: validate: %v", seed, err)
			return false
		}
		order, err := w.TopoOrder()
		if err != nil || len(order) != len(w.Functions) {
			return false
		}
		text := FormatDSL(w)
		back, err := ParseDSLString(text)
		if err != nil {
			t.Logf("seed %d: reparse: %v\n%s", seed, err, text)
			return false
		}
		if FormatDSL(back) != text {
			return false
		}
		// Graph invariants survive: same edges count, same critical path.
		if len(back.Edges()) != len(w.Edges()) || back.CriticalPathLen() != w.CriticalPathLen() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: predecessors and successors are mutually consistent on any
// generated workflow.
func TestPredSuccConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := genChainWorkflow(r)
		for _, fn := range w.Functions {
			for _, succ := range w.Successors(fn.Name) {
				found := false
				for _, pre := range w.Predecessors(succ) {
					if pre == fn.Name {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
