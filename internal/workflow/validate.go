package workflow

import (
	"errors"
	"fmt"
)

// Validate checks the structural integrity of the workflow:
//
//   - at least one function, one entry and one terminal;
//   - every destination references an existing function and input;
//   - Foreach/Merge outputs target List inputs, Normal outputs target
//     Normal inputs;
//   - Switch outputs have at least two destinations;
//   - every non-entry input is fed by at least one output, and no Normal
//     input is fed by more than one output;
//   - the graph is acyclic and every function is reachable from an entry.
//
// All problems found are joined into a single error.
func (w *Workflow) Validate() error {
	var errs []error
	add := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	ix := w.reindex()
	if len(w.Functions) == 0 {
		add("workflow %s: no functions", w.Name)
		return errors.Join(errs...)
	}
	if len(w.Entries()) == 0 {
		add("workflow %s: no entry function (no input with FromUser)", w.Name)
	}
	if len(w.Terminals()) == 0 {
		add("workflow %s: no terminal function (no output to %s)", w.Name, UserSource)
	}

	// Track feeders of every (function, input).
	type slot struct{ fn, in string }
	feeders := map[slot]int{}

	for _, f := range w.Functions {
		if len(f.Outputs) == 0 {
			add("function %s: no outputs (the DLU must be called at least once; terminal functions must emit an end signal to %s)", f.Name, UserSource)
		}
		seenIn := map[string]bool{}
		for _, in := range f.Inputs {
			if in.Name == "" {
				add("function %s: input with empty name", f.Name)
			}
			if seenIn[in.Name] {
				add("function %s: duplicate input %q", f.Name, in.Name)
			}
			seenIn[in.Name] = true
			if in.Kind != Normal && in.Kind != List {
				add("function %s input %s: kind must be NORMAL or LIST, got %s", f.Name, in.Name, in.Kind)
			}
		}
		seenOut := map[string]bool{}
		for _, o := range f.Outputs {
			if o.Name == "" {
				add("function %s: output with empty name", f.Name)
			}
			if seenOut[o.Name] {
				add("function %s: duplicate output %q", f.Name, o.Name)
			}
			seenOut[o.Name] = true
			if len(o.Dests) == 0 {
				add("function %s output %s: no destinations", f.Name, o.Name)
			}
			if o.Kind == Switch && len(o.Dests) < 2 {
				add("function %s output %s: SWITCH needs >= 2 destinations", f.Name, o.Name)
			}
			if o.Kind == List {
				add("function %s output %s: LIST is an input-side kind", f.Name, o.Name)
			}
			for _, d := range o.Dests {
				if d.Function == UserSource {
					continue
				}
				dst, ok := ix.byName[d.Function]
				if !ok {
					add("function %s output %s: unknown destination function %q", f.Name, o.Name, d.Function)
					continue
				}
				in, ok := dst.Input(d.Input)
				if !ok {
					add("function %s output %s: destination %s has no input %q", f.Name, o.Name, d.Function, d.Input)
					continue
				}
				feeders[slot{d.Function, d.Input}]++
				switch o.Kind {
				case Foreach, Merge:
					if in.Kind != List && o.Kind == Merge {
						add("function %s output %s: MERGE must feed a LIST input, %s.%s is %s",
							f.Name, o.Name, d.Function, d.Input, in.Kind)
					}
				case Normal, Switch:
					if in.Kind == List {
						add("function %s output %s: %s output feeds LIST input %s.%s (use MERGE)",
							f.Name, o.Name, o.Kind, d.Function, d.Input)
					}
				}
				if in.FromUser {
					add("function %s output %s: destination %s.%s is a user entry input",
						f.Name, o.Name, d.Function, d.Input)
				}
			}
		}
	}

	// Every non-entry input must be fed; Normal inputs by exactly one output.
	for _, f := range w.Functions {
		for _, in := range f.Inputs {
			if in.FromUser {
				continue
			}
			n := feeders[slot{f.Name, in.Name}]
			if n == 0 {
				add("function %s input %s: not fed by any output", f.Name, in.Name)
			}
			if in.Kind == Normal && n > 1 {
				add("function %s input %s: NORMAL input fed by %d outputs", f.Name, in.Name, n)
			}
		}
	}

	// Acyclicity.
	if _, err := w.TopoOrder(); err != nil {
		errs = append(errs, err)
	} else {
		// Reachability from entries (only meaningful on a DAG).
		reach := map[string]bool{}
		var stack []string
		for _, f := range w.Entries() {
			stack = append(stack, f.Name)
		}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if reach[n] {
				continue
			}
			reach[n] = true
			stack = append(stack, w.Successors(n)...)
		}
		for _, f := range w.Functions {
			if !reach[f.Name] {
				add("function %s: unreachable from any entry", f.Name)
			}
		}
	}
	return errors.Join(errs...)
}
