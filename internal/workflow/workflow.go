// Package workflow defines serverless workflows in the data-flow paradigm.
//
// A workflow is a set of functions connected by *data* edges (not control
// edges): each function declares the sources of its inputs and the
// destinations of its outputs, mirroring the declaration language of the
// paper's Figure 7. Edge kinds express the composition patterns of
// serverless workflow languages:
//
//   - Normal:  one data item flows to each destination input.
//   - Foreach: the output is a list; element i flows to instance i of the
//     destination function (dynamic fan-out).
//   - Merge:   the output of every instance of this function flows into a
//     single List input of the destination (fan-in).
//   - Switch:  exactly one of the declared destinations receives the data,
//     selected at run time by the producing function.
//
// The package provides a builder API, a text DSL parser (ParseDSL), a JSON
// codec, structural validation and graph utilities (topological order,
// predecessor/successor sets). The execution semantics live in
// internal/dataflow.
package workflow

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// EdgeKind describes how data fans out of an output or into an input.
type EdgeKind int

// Edge kinds. The zero value is Normal.
const (
	Normal EdgeKind = iota
	Foreach
	Merge
	Switch
	List // input-side: collect one item from every instance of each source
)

// String returns the DSL spelling of the kind.
func (k EdgeKind) String() string {
	switch k {
	case Normal:
		return "NORMAL"
	case Foreach:
		return "FOREACH"
	case Merge:
		return "MERGE"
	case Switch:
		return "SWITCH"
	case List:
		return "LIST"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// ParseEdgeKind converts a DSL spelling to an EdgeKind.
func ParseEdgeKind(s string) (EdgeKind, error) {
	switch s {
	case "NORMAL", "normal", "":
		return Normal, nil
	case "FOREACH", "foreach":
		return Foreach, nil
	case "MERGE", "merge":
		return Merge, nil
	case "SWITCH", "switch":
		return Switch, nil
	case "LIST", "list":
		return List, nil
	}
	return Normal, fmt.Errorf("workflow: unknown edge kind %q", s)
}

// UserSource is the pseudo-function representing the workflow invoker: entry
// inputs come from it and terminal outputs flow back to it.
const UserSource = "$USER"

// Dest is one destination of an output: an input slot of a function, or the
// user (Function == UserSource).
type Dest struct {
	Function string `json:"function"`        // destination function name or $USER
	Input    string `json:"input,omitempty"` // destination input name (empty for $USER)
}

// String formats the destination as function.input.
func (d Dest) String() string {
	if d.Function == UserSource || d.Input == "" {
		return d.Function
	}
	return d.Function + "." + d.Input
}

// Output declares one named output of a function and where it flows.
type Output struct {
	Name  string   `json:"name"`
	Kind  EdgeKind `json:"kind"`
	Dests []Dest   `json:"dests"`
}

// Input declares one named input of a function.
type Input struct {
	Name string   `json:"name"`
	Kind EdgeKind `json:"kind"` // Normal (single item) or List (fan-in)
	// FromUser marks an entry input supplied by the invoker.
	FromUser bool `json:"fromUser,omitempty"`
}

// Function is one node of the workflow: a FLU definition with declared
// inputs and outputs.
type Function struct {
	Name    string   `json:"name"`
	Inputs  []Input  `json:"inputs"`
	Outputs []Output `json:"outputs"`

	idx int // position in the owning workflow's Functions list
}

// Index returns the function's position in its workflow's Functions list,
// valid once the function is registered (AddFunction or reindex). Trackers
// use it to keep per-function state in slices instead of string-keyed maps.
func (f *Function) Index() int { return f.idx }

// Input returns the input declaration with the given name.
func (f *Function) Input(name string) (Input, bool) {
	for _, in := range f.Inputs {
		if in.Name == name {
			return in, true
		}
	}
	return Input{}, false
}

// Output returns the output declaration with the given name.
func (f *Function) Output(name string) (Output, bool) {
	for _, out := range f.Outputs {
		if out.Name == name {
			return out, true
		}
	}
	return Output{}, false
}

// Workflow is a named data-flow graph of functions. Once a workflow starts
// serving requests it must not be structurally modified: the derived index
// (name lookup, edge list, entries, static user-item count) is built once
// and shared by every request, rebuilt only when the function count
// changes.
type Workflow struct {
	Name      string      `json:"name"`
	Functions []*Function `json:"functions"`

	// index is the atomically published derived-data snapshot; indexMu
	// serializes (re)builds. Concurrent readers load the pointer, which
	// also publishes the Function.idx assignments made during the build.
	index   atomic.Pointer[wfIndex]
	indexMu sync.Mutex
}

// wfIndex is the immutable derived data of a workflow snapshot.
type wfIndex struct {
	n          int // len(Functions) this snapshot was built for
	byName     map[string]*Function
	edges      []Edge
	entries    []*Function
	staticUser int
	staticOK   bool
}

// New returns an empty workflow with the given name.
func New(name string) *Workflow {
	return &Workflow{Name: name}
}

// AddFunction appends a function node. It returns an error on duplicate
// names or a name colliding with UserSource.
func (w *Workflow) AddFunction(f *Function) error {
	if f.Name == "" {
		return fmt.Errorf("workflow %s: function with empty name", w.Name)
	}
	if f.Name == UserSource {
		return fmt.Errorf("workflow %s: function name %s is reserved", w.Name, UserSource)
	}
	for _, g := range w.Functions {
		if g.Name == f.Name {
			return fmt.Errorf("workflow %s: duplicate function %q", w.Name, f.Name)
		}
	}
	f.idx = len(w.Functions)
	w.Functions = append(w.Functions, f)
	return nil
}

// Function returns the function with the given name.
func (w *Workflow) Function(name string) (*Function, bool) {
	f, ok := w.reindex().byName[name]
	return f, ok
}

// reindex returns the current index snapshot, building it if the function
// count changed (needed after JSON decoding). Safe for concurrent use.
func (w *Workflow) reindex() *wfIndex {
	if ix := w.index.Load(); ix != nil && ix.n == len(w.Functions) {
		return ix
	}
	w.indexMu.Lock()
	defer w.indexMu.Unlock()
	if ix := w.index.Load(); ix != nil && ix.n == len(w.Functions) {
		return ix
	}
	ix := &wfIndex{
		n:      len(w.Functions),
		byName: make(map[string]*Function, len(w.Functions)),
	}
	for i, f := range w.Functions {
		f.idx = i
		ix.byName[f.Name] = f
	}
	for _, f := range w.Functions {
		for _, in := range f.Inputs {
			if in.FromUser {
				ix.entries = append(ix.entries, f)
				break
			}
		}
	}
	if ix.entries == nil {
		ix.entries = []*Function{}
	}
	ix.edges = buildEdges(w.Functions, ix.byName)
	ix.staticUser, ix.staticOK = buildStaticUserItems(w.Functions, ix)
	w.index.Store(ix)
	return ix
}

// Entries returns the functions that take at least one input from the user
// (cached in the index snapshot; do not mutate the returned slice).
func (w *Workflow) Entries() []*Function {
	return w.reindex().entries
}

// StaticUserItems returns the number of items every request delivers to the
// user when that count is fixed by topology alone — no SWITCH and no
// FOREACH output anywhere in the workflow — and whether it is. Trackers use
// it to skip the per-request expectation walk; cached in the index.
func (w *Workflow) StaticUserItems() (int, bool) {
	ix := w.reindex()
	return ix.staticUser, ix.staticOK
}

// buildStaticUserItems computes the StaticUserItems answer for a snapshot.
func buildStaticUserItems(fns []*Function, ix *wfIndex) (int, bool) {
	for _, f := range fns {
		for _, o := range f.Outputs {
			if o.Kind == Switch || o.Kind == Foreach {
				return 0, false
			}
		}
	}
	// Only functions reachable from an entry execute; without FOREACH every
	// reachable function has exactly one instance.
	reachable := make([]bool, len(fns))
	var stack []*Function
	stack = append(stack, ix.entries...)
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reachable[f.idx] {
			continue
		}
		reachable[f.idx] = true
		for _, o := range f.Outputs {
			for _, d := range o.Dests {
				if d.Function == UserSource {
					continue
				}
				if df, ok := ix.byName[d.Function]; ok {
					stack = append(stack, df)
				}
			}
		}
	}
	total := 0
	for i, f := range fns {
		if !reachable[i] {
			continue
		}
		for _, o := range f.Outputs {
			for _, d := range o.Dests {
				if d.Function == UserSource {
					total++
				}
			}
		}
	}
	return total, true
}

// Terminals returns the functions with at least one output to the user.
func (w *Workflow) Terminals() []*Function {
	var out []*Function
	for _, f := range w.Functions {
		for _, o := range f.Outputs {
			for _, d := range o.Dests {
				if d.Function == UserSource {
					out = append(out, f)
					break
				}
			}
		}
	}
	return out
}

// Successors returns the distinct downstream function names of f, sorted.
func (w *Workflow) Successors(name string) []string {
	f, ok := w.reindex().byName[name]
	if !ok {
		return nil
	}
	set := map[string]struct{}{}
	for _, o := range f.Outputs {
		for _, d := range o.Dests {
			if d.Function != UserSource {
				set[d.Function] = struct{}{}
			}
		}
	}
	return sortedKeys(set)
}

// Predecessors returns the distinct upstream function names of name, sorted.
func (w *Workflow) Predecessors(name string) []string {
	set := map[string]struct{}{}
	for _, f := range w.Functions {
		for _, o := range f.Outputs {
			for _, d := range o.Dests {
				if d.Function == name {
					set[f.Name] = struct{}{}
				}
			}
		}
	}
	return sortedKeys(set)
}

// Edge is one resolved data edge of the graph.
type Edge struct {
	From       string   // producing function
	Output     string   // output name
	Kind       EdgeKind // output kind
	To         string   // consuming function or $USER
	ToInput    string   // consuming input name (empty for $USER)
	InputKind  EdgeKind // consuming input kind (Normal/List; Normal for $USER)
	SwitchCase int      // index among the output's dests (for Switch routing)
}

// Edges returns every data edge in declaration order.
func (w *Workflow) Edges() []Edge {
	return w.reindex().edges
}

// buildEdges materializes the edge list for an index snapshot.
func buildEdges(fns []*Function, byName map[string]*Function) []Edge {
	var out []Edge
	for _, f := range fns {
		for _, o := range f.Outputs {
			for i, d := range o.Dests {
				e := Edge{
					From:       f.Name,
					Output:     o.Name,
					Kind:       o.Kind,
					To:         d.Function,
					ToInput:    d.Input,
					SwitchCase: i,
				}
				if dst, ok := byName[d.Function]; ok {
					if in, ok := dst.Input(d.Input); ok {
						e.InputKind = in.Kind
					}
				}
				out = append(out, e)
			}
		}
	}
	return out
}

// TopoOrder returns the function names in a topological order of the data
// graph. It returns an error if the graph has a cycle.
func (w *Workflow) TopoOrder() ([]string, error) {
	indeg := make(map[string]int, len(w.Functions))
	for _, f := range w.Functions {
		indeg[f.Name] = 0
	}
	for _, e := range w.Edges() {
		if e.To == UserSource {
			continue
		}
		if _, ok := indeg[e.To]; ok {
			indeg[e.To]++
		}
	}
	// Deterministic: seed queue in declaration order.
	var queue []string
	for _, f := range w.Functions {
		if indeg[f.Name] == 0 {
			queue = append(queue, f.Name)
		}
	}
	var order []string
	seen := map[string]bool{}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if seen[n] {
			continue
		}
		seen[n] = true
		order = append(order, n)
		for _, s := range w.Successors(n) {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(w.Functions) {
		return nil, fmt.Errorf("workflow %s: cycle detected (%d of %d functions ordered)",
			w.Name, len(order), len(w.Functions))
	}
	return order, nil
}

// CriticalPathLen returns the number of functions on the longest path from
// any entry to any terminal (a depth measure used by experiments).
func (w *Workflow) CriticalPathLen() int {
	order, err := w.TopoOrder()
	if err != nil {
		return 0
	}
	depth := map[string]int{}
	best := 0
	for _, n := range order {
		d := 1
		for _, pre := range w.Predecessors(n) {
			if depth[pre]+1 > d {
				d = depth[pre] + 1
			}
		}
		depth[n] = d
		if d > best {
			best = d
		}
	}
	return best
}

func sortedKeys(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
