package workflow

import (
	"encoding/json"
	"strings"
	"testing"
)

// buildWordCount constructs the paper's Figure 7 WordCount workflow via the
// builder API.
func buildWordCount(t *testing.T) *Workflow {
	t.Helper()
	w := New("wordcount")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.AddFunction(&Function{
		Name:   "start",
		Inputs: []Input{{Name: "src", FromUser: true}},
		Outputs: []Output{{
			Name: "filelist", Kind: Foreach,
			Dests: []Dest{{Function: "count", Input: "file"}},
		}},
	}))
	must(w.AddFunction(&Function{
		Name:   "count",
		Inputs: []Input{{Name: "file"}},
		Outputs: []Output{{
			Name: "result", Kind: Merge,
			Dests: []Dest{{Function: "merge", Input: "counts"}},
		}},
	}))
	must(w.AddFunction(&Function{
		Name:   "merge",
		Inputs: []Input{{Name: "counts", Kind: List}},
		Outputs: []Output{{
			Name:  "out",
			Dests: []Dest{{Function: UserSource}},
		}},
	}))
	if err := w.Validate(); err != nil {
		t.Fatalf("wordcount should validate: %v", err)
	}
	return w
}

func TestValidateWordCount(t *testing.T) {
	buildWordCount(t)
}

func TestEntriesAndTerminals(t *testing.T) {
	w := buildWordCount(t)
	ent := w.Entries()
	if len(ent) != 1 || ent[0].Name != "start" {
		t.Fatalf("entries = %v", ent)
	}
	term := w.Terminals()
	if len(term) != 1 || term[0].Name != "merge" {
		t.Fatalf("terminals = %v", term)
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	w := buildWordCount(t)
	if s := w.Successors("start"); len(s) != 1 || s[0] != "count" {
		t.Fatalf("succ(start) = %v", s)
	}
	if p := w.Predecessors("merge"); len(p) != 1 || p[0] != "count" {
		t.Fatalf("pred(merge) = %v", p)
	}
	if p := w.Predecessors("start"); len(p) != 0 {
		t.Fatalf("pred(start) = %v", p)
	}
}

func TestTopoOrder(t *testing.T) {
	w := buildWordCount(t)
	order, err := w.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if !(pos["start"] < pos["count"] && pos["count"] < pos["merge"]) {
		t.Fatalf("bad topo order %v", order)
	}
}

func TestCriticalPathLen(t *testing.T) {
	w := buildWordCount(t)
	if got := w.CriticalPathLen(); got != 3 {
		t.Fatalf("critical path = %d, want 3", got)
	}
}

func TestCycleDetected(t *testing.T) {
	w := New("cyc")
	_ = w.AddFunction(&Function{
		Name:    "a",
		Inputs:  []Input{{Name: "in", FromUser: true}, {Name: "loop"}},
		Outputs: []Output{{Name: "o", Dests: []Dest{{Function: "b", Input: "in"}}}},
	})
	_ = w.AddFunction(&Function{
		Name:   "b",
		Inputs: []Input{{Name: "in"}},
		Outputs: []Output{
			{Name: "o", Dests: []Dest{{Function: "a", Input: "loop"}}},
			{Name: "end", Dests: []Dest{{Function: UserSource}}},
		},
	})
	if _, err := w.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Validate should report cycle, got %v", err)
	}
}

func TestValidateCatchesUnknownDest(t *testing.T) {
	w := New("bad")
	_ = w.AddFunction(&Function{
		Name:    "a",
		Inputs:  []Input{{Name: "in", FromUser: true}},
		Outputs: []Output{{Name: "o", Dests: []Dest{{Function: "ghost", Input: "x"}}}},
	})
	err := w.Validate()
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("want unknown-destination error, got %v", err)
	}
}

func TestValidateCatchesUnfedInput(t *testing.T) {
	w := New("bad")
	_ = w.AddFunction(&Function{
		Name:    "a",
		Inputs:  []Input{{Name: "in", FromUser: true}, {Name: "orphan"}},
		Outputs: []Output{{Name: "o", Dests: []Dest{{Function: UserSource}}}},
	})
	err := w.Validate()
	if err == nil || !strings.Contains(err.Error(), "orphan") {
		t.Fatalf("want unfed-input error, got %v", err)
	}
}

func TestValidateCatchesMergeToNormal(t *testing.T) {
	w := New("bad")
	_ = w.AddFunction(&Function{
		Name:    "a",
		Inputs:  []Input{{Name: "in", FromUser: true}},
		Outputs: []Output{{Name: "o", Kind: Merge, Dests: []Dest{{Function: "b", Input: "x"}}}},
	})
	_ = w.AddFunction(&Function{
		Name:    "b",
		Inputs:  []Input{{Name: "x"}}, // Normal, but fed by MERGE
		Outputs: []Output{{Name: "o", Dests: []Dest{{Function: UserSource}}}},
	})
	err := w.Validate()
	if err == nil || !strings.Contains(err.Error(), "MERGE") {
		t.Fatalf("want merge-kind error, got %v", err)
	}
}

func TestValidateCatchesNormalToList(t *testing.T) {
	w := New("bad")
	_ = w.AddFunction(&Function{
		Name:    "a",
		Inputs:  []Input{{Name: "in", FromUser: true}},
		Outputs: []Output{{Name: "o", Dests: []Dest{{Function: "b", Input: "x"}}}},
	})
	_ = w.AddFunction(&Function{
		Name:    "b",
		Inputs:  []Input{{Name: "x", Kind: List}},
		Outputs: []Output{{Name: "o", Dests: []Dest{{Function: UserSource}}}},
	})
	err := w.Validate()
	if err == nil || !strings.Contains(err.Error(), "LIST") {
		t.Fatalf("want normal-to-list error, got %v", err)
	}
}

func TestValidateSwitchNeedsTwoDests(t *testing.T) {
	w := New("bad")
	_ = w.AddFunction(&Function{
		Name:    "a",
		Inputs:  []Input{{Name: "in", FromUser: true}},
		Outputs: []Output{{Name: "o", Kind: Switch, Dests: []Dest{{Function: UserSource}}}},
	})
	err := w.Validate()
	if err == nil || !strings.Contains(err.Error(), "SWITCH") {
		t.Fatalf("want switch error, got %v", err)
	}
}

func TestValidateUnreachable(t *testing.T) {
	w := New("bad")
	_ = w.AddFunction(&Function{
		Name:    "a",
		Inputs:  []Input{{Name: "in", FromUser: true}},
		Outputs: []Output{{Name: "o", Dests: []Dest{{Function: UserSource}}}},
	})
	_ = w.AddFunction(&Function{
		Name:    "island",
		Inputs:  []Input{{Name: "x", FromUser: false, Kind: Normal}},
		Outputs: []Output{{Name: "o", Dests: []Dest{{Function: UserSource}}}},
	})
	err := w.Validate()
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("want unreachable error, got %v", err)
	}
}

func TestAddFunctionDuplicate(t *testing.T) {
	w := New("dup")
	f := &Function{Name: "a"}
	if err := w.AddFunction(f); err != nil {
		t.Fatal(err)
	}
	if err := w.AddFunction(&Function{Name: "a"}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := w.AddFunction(&Function{Name: UserSource}); err == nil {
		t.Fatal("$USER accepted as function name")
	}
	if err := w.AddFunction(&Function{}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestEdgesResolveInputKinds(t *testing.T) {
	w := buildWordCount(t)
	edges := w.Edges()
	if len(edges) != 3 {
		t.Fatalf("edges = %d, want 3", len(edges))
	}
	var countToMerge *Edge
	for i := range edges {
		if edges[i].From == "count" {
			countToMerge = &edges[i]
		}
	}
	if countToMerge == nil || countToMerge.InputKind != List || countToMerge.Kind != Merge {
		t.Fatalf("count->merge edge wrong: %+v", countToMerge)
	}
}

func TestEdgeKindStringRoundTrip(t *testing.T) {
	for _, k := range []EdgeKind{Normal, Foreach, Merge, Switch, List} {
		got, err := ParseEdgeKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v failed: %v %v", k, got, err)
		}
	}
	if _, err := ParseEdgeKind("BOGUS"); err == nil {
		t.Fatal("BOGUS accepted")
	}
	if k, err := ParseEdgeKind(""); err != nil || k != Normal {
		t.Fatal("empty string should default to NORMAL")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	w := buildWordCount(t)
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back Workflow
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != w.Name || len(back.Functions) != len(w.Functions) {
		t.Fatalf("round trip mismatch: name=%q functions=%d", back.Name, len(back.Functions))
	}
	f, ok := back.Function("count")
	if !ok {
		t.Fatal("count missing after round trip")
	}
	if f.Outputs[0].Kind != Merge {
		t.Fatalf("kind lost: %v", f.Outputs[0].Kind)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var w Workflow
	err := json.Unmarshal([]byte(`{"name":"x","functions":[{"name":"a","inputs":[],"outputs":[]}]}`), &w)
	if err == nil {
		t.Fatal("invalid workflow accepted from JSON")
	}
}

func TestFunctionLookups(t *testing.T) {
	w := buildWordCount(t)
	f, ok := w.Function("count")
	if !ok {
		t.Fatal("count not found")
	}
	if _, ok := f.Input("file"); !ok {
		t.Fatal("input file not found")
	}
	if _, ok := f.Input("nope"); ok {
		t.Fatal("phantom input found")
	}
	if _, ok := f.Output("result"); !ok {
		t.Fatal("output result not found")
	}
	if _, ok := f.Output("nope"); ok {
		t.Fatal("phantom output found")
	}
	if _, ok := w.Function("nope"); ok {
		t.Fatal("phantom function found")
	}
}
