package workloads

import (
	"math/rand"
	"testing"
)

// BenchmarkJacobiSVD measures the real numeric kernel used by the svd
// workload's verification path.
func BenchmarkJacobiSVD(b *testing.B) {
	m := NewMatrix(64, 8)
	r := rand.New(rand.NewSource(1))
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sv := m.SingularValues(); len(sv) != 8 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkTranscode measures the per-byte video transform.
func BenchmarkTranscode(b *testing.B) {
	chunk := make([]byte, 1<<20)
	rand.New(rand.NewSource(2)).Read(chunk)
	b.SetBytes(int64(len(chunk)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transcode(chunk)
	}
}

// BenchmarkBoxBlur measures the image kernel.
func BenchmarkBoxBlur(b *testing.B) {
	im := GenImage(256, 192, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im.BoxBlur(1)
	}
}
