package workloads

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// RegisterWordCount installs real word-count handlers on a System deployed
// with the wc workflow. fanout shards the input text.
func RegisterWordCount(sys *core.System, fanout int) error {
	if fanout < 1 {
		fanout = 1
	}
	if err := sys.Register("start", func(ctx *core.Context) error {
		src, err := ctx.Input("src")
		if err != nil {
			return err
		}
		words := strings.Fields(string(src))
		shards := make([][]byte, fanout)
		for i := range shards {
			lo, hi := i*len(words)/fanout, (i+1)*len(words)/fanout
			shards[i] = []byte(strings.Join(words[lo:hi], " "))
		}
		return ctx.PutForeach("filelist", shards)
	}); err != nil {
		return err
	}
	if err := sys.Register("count", func(ctx *core.Context) error {
		shard, err := ctx.Input("file")
		if err != nil {
			return err
		}
		counts := map[string]int{}
		for _, w := range strings.Fields(string(shard)) {
			counts[w]++
		}
		return ctx.Put("result", encodeCounts(counts))
	}); err != nil {
		return err
	}
	return sys.Register("merge", func(ctx *core.Context) error {
		parts, err := ctx.InputList("counts")
		if err != nil {
			return err
		}
		total := map[string]int{}
		for _, p := range parts {
			m, err := decodeCounts(p)
			if err != nil {
				return err
			}
			for k, v := range m {
				total[k] += v
			}
		}
		return ctx.Put("out", encodeCounts(total))
	})
}

// encodeCounts renders word counts as sorted "word n" lines.
func encodeCounts(m map[string]int) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, m[k])
	}
	return b.Bytes()
}

// decodeCounts parses the encodeCounts format.
func decodeCounts(b []byte) (map[string]int, error) {
	out := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		if line == "" {
			continue
		}
		fs := strings.Fields(line)
		if len(fs) != 2 {
			return nil, fmt.Errorf("workloads: bad count line %q", line)
		}
		n, err := strconv.Atoi(fs[1])
		if err != nil {
			return nil, err
		}
		out[fs[0]] = n
	}
	return out, nil
}

// RegisterSVD installs real SVD handlers on a System deployed with the svd
// workflow: the matrix is split into row blocks, each block contributes its
// Gram matrix AᵢᵀAᵢ, and combine extracts singular values from the
// eigenvalues of the sum.
func RegisterSVD(sys *core.System, fanout int) error {
	if fanout < 1 {
		fanout = 1
	}
	if err := sys.Register("partition", func(ctx *core.Context) error {
		blob, err := ctx.Input("matrix")
		if err != nil {
			return err
		}
		m, err := UnmarshalMatrix(blob)
		if err != nil {
			return err
		}
		blocks := m.RowBlocks(fanout)
		payloads := make([][]byte, len(blocks))
		for i, b := range blocks {
			payloads[i] = b.Marshal()
		}
		return ctx.PutForeach("blocks", payloads)
	}); err != nil {
		return err
	}
	if err := sys.Register("factorize", func(ctx *core.Context) error {
		blob, err := ctx.Input("block")
		if err != nil {
			return err
		}
		blk, err := UnmarshalMatrix(blob)
		if err != nil {
			return err
		}
		gram := NewMatrix(blk.Cols, blk.Cols)
		blk.GramSum(gram)
		return ctx.Put("partial", gram.Marshal())
	}); err != nil {
		return err
	}
	return sys.Register("combine", func(ctx *core.Context) error {
		parts, err := ctx.InputList("partials")
		if err != nil {
			return err
		}
		var acc *Matrix
		for _, p := range parts {
			g, err := UnmarshalMatrix(p)
			if err != nil {
				return err
			}
			if acc == nil {
				acc = NewMatrix(g.Rows, g.Cols)
			}
			for i := range g.Data {
				acc.Data[i] += g.Data[i]
			}
		}
		if acc == nil {
			return fmt.Errorf("workloads: no partials")
		}
		ev := acc.SymmetricEigenvalues()
		sv := make([]float64, len(ev))
		for i, v := range ev {
			if v < 0 {
				v = 0
			}
			sv[i] = math.Sqrt(v)
		}
		return ctx.Put("out", marshalFloats(sv))
	})
}

// marshalFloats encodes a float64 slice (count then values).
func marshalFloats(v []float64) []byte {
	buf := make([]byte, 8+8*len(v))
	binary.LittleEndian.PutUint64(buf, uint64(len(v)))
	for i, f := range v {
		binary.LittleEndian.PutUint64(buf[8+8*i:], math.Float64bits(f))
	}
	return buf
}

// UnmarshalFloats decodes marshalFloats output.
func UnmarshalFloats(b []byte) ([]float64, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("workloads: float blob too short")
	}
	n := int(binary.LittleEndian.Uint64(b))
	if n < 0 || 8+8*n > len(b) {
		return nil, fmt.Errorf("workloads: float blob header %d inconsistent", n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8+8*i:]))
	}
	return out, nil
}

// Image is a tiny grayscale raster used by the image-processing workload.
type Image struct {
	W, H int
	Pix  []byte // W*H luminance values
}

// MarshalImage serializes width, height and pixels.
func (im *Image) Marshal() []byte {
	buf := make([]byte, 16+len(im.Pix))
	binary.LittleEndian.PutUint64(buf[0:], uint64(im.W))
	binary.LittleEndian.PutUint64(buf[8:], uint64(im.H))
	copy(buf[16:], im.Pix)
	return buf
}

// UnmarshalImage decodes MarshalImage output.
func UnmarshalImage(b []byte) (*Image, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("workloads: image blob too short")
	}
	w := int(binary.LittleEndian.Uint64(b[0:]))
	h := int(binary.LittleEndian.Uint64(b[8:]))
	if w <= 0 || h <= 0 || w*h > len(b)-16 {
		return nil, fmt.Errorf("workloads: image header %dx%d inconsistent", w, h)
	}
	im := &Image{W: w, H: h, Pix: make([]byte, w*h)}
	copy(im.Pix, b[16:16+w*h])
	return im, nil
}

// GenImage produces a deterministic synthetic image.
func GenImage(w, h int, seed int64) *Image {
	im := &Image{W: w, H: h, Pix: make([]byte, w*h)}
	r := rand.New(rand.NewSource(seed))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 128 + 64*math.Sin(float64(x)/9) + 32*math.Sin(float64(y)/7) + float64(r.Intn(17))
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			im.Pix[y*w+x] = byte(v)
		}
	}
	return im
}

// Thumbnail downscales by factor with nearest-neighbour sampling.
func (im *Image) Thumbnail(factor int) *Image {
	if factor < 1 {
		factor = 1
	}
	w, h := im.W/factor, im.H/factor
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := &Image{W: w, H: h, Pix: make([]byte, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Pix[y*w+x] = im.Pix[(y*factor)*im.W+x*factor]
		}
	}
	return out
}

// BoxBlur applies an n-pass 3×3 box filter.
func (im *Image) BoxBlur(passes int) *Image {
	cur := &Image{W: im.W, H: im.H, Pix: append([]byte(nil), im.Pix...)}
	for p := 0; p < passes; p++ {
		next := make([]byte, len(cur.Pix))
		for y := 0; y < cur.H; y++ {
			for x := 0; x < cur.W; x++ {
				sum, n := 0, 0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						xx, yy := x+dx, y+dy
						if xx < 0 || yy < 0 || xx >= cur.W || yy >= cur.H {
							continue
						}
						sum += int(cur.Pix[yy*cur.W+xx])
						n++
					}
				}
				next[y*cur.W+x] = byte(sum / n)
			}
		}
		cur.Pix = next
	}
	return cur
}

// DetectBright counts connected-ish bright regions: pixels above the mean
// plus one standard deviation, summarized as an object count. A stand-in
// for the ML inference step.
func (im *Image) DetectBright() int {
	if len(im.Pix) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range im.Pix {
		sum += float64(p)
	}
	mean := sum / float64(len(im.Pix))
	ss := 0.0
	for _, p := range im.Pix {
		d := float64(p) - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(im.Pix)))
	thresh := byte(math.Min(255, mean+sd))
	count := 0
	// Count threshold crossings along the raster order as a cheap proxy for
	// distinct regions.
	prev := false
	for _, p := range im.Pix {
		cur := p >= thresh
		if cur && !prev {
			count++
		}
		prev = cur
	}
	return count
}

// RegisterImagePipeline installs real image handlers on a System deployed
// with the img workflow.
func RegisterImagePipeline(sys *core.System) error {
	if err := sys.Register("extract", func(ctx *core.Context) error {
		blob, err := ctx.Input("image")
		if err != nil {
			return err
		}
		im, err := UnmarshalImage(blob)
		if err != nil {
			return err
		}
		meta := []byte(fmt.Sprintf("w=%d h=%d bytes=%d", im.W, im.H, len(im.Pix)))
		if err := ctx.Put("meta", meta); err != nil {
			return err
		}
		if err := ctx.Put("thumb_src", blob); err != nil {
			return err
		}
		return ctx.Put("detect_src", blob)
	}); err != nil {
		return err
	}
	if err := sys.Register("transform", func(ctx *core.Context) error {
		meta, err := ctx.Input("meta")
		if err != nil {
			return err
		}
		return ctx.Put("tagged", append([]byte("tagged: "), meta...))
	}); err != nil {
		return err
	}
	if err := sys.Register("thumbnail", func(ctx *core.Context) error {
		blob, err := ctx.Input("image")
		if err != nil {
			return err
		}
		im, err := UnmarshalImage(blob)
		if err != nil {
			return err
		}
		return ctx.Put("thumb", im.Thumbnail(4).Marshal())
	}); err != nil {
		return err
	}
	if err := sys.Register("detect", func(ctx *core.Context) error {
		blob, err := ctx.Input("image")
		if err != nil {
			return err
		}
		im, err := UnmarshalImage(blob)
		if err != nil {
			return err
		}
		objects := im.BoxBlur(2).DetectBright()
		return ctx.Put("objects", []byte(strconv.Itoa(objects)))
	}); err != nil {
		return err
	}
	return sys.Register("store", func(ctx *core.Context) error {
		meta, err := ctx.Input("meta")
		if err != nil {
			return err
		}
		thumb, err := ctx.Input("thumb")
		if err != nil {
			return err
		}
		objects, err := ctx.Input("objects")
		if err != nil {
			return err
		}
		summary := fmt.Sprintf("%s | thumb=%dB | objects=%s", meta, len(thumb), objects)
		return ctx.Put("out", []byte(summary))
	})
}

// Transcode re-encodes a byte chunk with delta encoding plus 4-bit
// quantization — a cheap, deterministic stand-in for the FFmpeg transcode
// step that really touches every byte.
func Transcode(chunk []byte) []byte {
	out := make([]byte, 0, len(chunk)/2+1)
	prev := byte(0)
	for i := 0; i+1 < len(chunk); i += 2 {
		d1 := (chunk[i] - prev) >> 4
		prev = chunk[i]
		d2 := (chunk[i+1] - prev) >> 4
		prev = chunk[i+1]
		out = append(out, d1<<4|d2&0x0f)
	}
	return out
}

// RegisterVideoPipeline installs real video handlers on a System deployed
// with the vid workflow. fanout is the number of transcode chunks.
func RegisterVideoPipeline(sys *core.System, fanout int) error {
	if fanout < 1 {
		fanout = 1
	}
	if err := sys.Register("split", func(ctx *core.Context) error {
		video, err := ctx.Input("video")
		if err != nil {
			return err
		}
		chunks := make([][]byte, fanout)
		for i := range chunks {
			lo, hi := i*len(video)/fanout, (i+1)*len(video)/fanout
			chunks[i] = video[lo:hi]
		}
		return ctx.PutForeach("chunks", chunks)
	}); err != nil {
		return err
	}
	if err := sys.Register("transcode", func(ctx *core.Context) error {
		chunk, err := ctx.Input("chunk")
		if err != nil {
			return err
		}
		return ctx.Put("encoded", Transcode(chunk))
	}); err != nil {
		return err
	}
	return sys.Register("concat", func(ctx *core.Context) error {
		parts, err := ctx.InputList("parts")
		if err != nil {
			return err
		}
		var out []byte
		for _, p := range parts {
			out = append(out, p...)
		}
		return ctx.Put("out", out)
	})
}
