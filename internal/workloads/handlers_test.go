package workloads

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// newSystem deploys prof on a fast 3-node in-process cluster.
func newSystem(t *testing.T, prof *Profile) *core.System {
	t.Helper()
	cl := cluster.NewCluster(nil)
	for i := 1; i <= 3; i++ {
		if err := cl.AddNode(cluster.NewNode(fmt.Sprintf("w%d", i), cluster.Options{
			ColdStart: time.Millisecond,
		})); err != nil {
			t.Fatal(err)
		}
	}
	sys, err := core.NewSystem(core.Config{
		Workflow:    prof.Workflow,
		Cluster:     cl,
		DefaultSpec: cluster.Spec{MemoryMB: 8 * 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRegisterWordCountEndToEnd(t *testing.T) {
	sys := newSystem(t, WordCount(3, 0))
	defer sys.Shutdown()
	if err := RegisterWordCount(sys, 3); err != nil {
		t.Fatal(err)
	}
	inv, err := sys.Invoke(map[string][]byte{
		"start.src": []byte("go go go gopher gopher flow"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inv.Wait(); err != nil {
		t.Fatal(err)
	}
	out, _ := inv.OutputBytes("out")
	counts, err := decodeCounts(out)
	if err != nil {
		t.Fatal(err)
	}
	if counts["go"] != 3 || counts["gopher"] != 2 || counts["flow"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestRegisterWordCountClampsFanout(t *testing.T) {
	sys := newSystem(t, WordCount(1, 0))
	defer sys.Shutdown()
	if err := RegisterWordCount(sys, 0); err != nil { // clamps to 1
		t.Fatal(err)
	}
	inv, _ := sys.Invoke(map[string][]byte{"start.src": []byte("a a")})
	if err := inv.Wait(); err != nil {
		t.Fatal(err)
	}
	out, _ := inv.OutputBytes("out")
	if !strings.Contains(string(out), "a 2") {
		t.Fatalf("out = %q", out)
	}
}

func TestRegisterSVDEndToEnd(t *testing.T) {
	sys := newSystem(t, SVD(4, 0))
	defer sys.Shutdown()
	if err := RegisterSVD(sys, 4); err != nil {
		t.Fatal(err)
	}
	m := NewMatrix(32, 5)
	r := rand.New(rand.NewSource(11))
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	inv, err := sys.Invoke(map[string][]byte{"partition.matrix": m.Marshal()})
	if err != nil {
		t.Fatal(err)
	}
	if err := inv.Wait(); err != nil {
		t.Fatal(err)
	}
	out, _ := inv.OutputBytes("out")
	got, err := UnmarshalFloats(out)
	if err != nil {
		t.Fatal(err)
	}
	want := m.SingularValues()
	if len(got) != len(want) {
		t.Fatalf("got %d singular values, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("sv[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRegisterImagePipelineEndToEnd(t *testing.T) {
	sys := newSystem(t, ImageProcessing(0))
	defer sys.Shutdown()
	if err := RegisterImagePipeline(sys); err != nil {
		t.Fatal(err)
	}
	im := GenImage(96, 64, 5)
	inv, err := sys.Invoke(map[string][]byte{"extract.image": im.Marshal()})
	if err != nil {
		t.Fatal(err)
	}
	if err := inv.Wait(); err != nil {
		t.Fatal(err)
	}
	out, _ := inv.OutputBytes("out")
	summary := string(out)
	if !strings.Contains(summary, "w=96 h=64") {
		t.Fatalf("metadata missing: %q", summary)
	}
	if !strings.Contains(summary, "thumb=") || !strings.Contains(summary, "objects=") {
		t.Fatalf("summary incomplete: %q", summary)
	}
}

func TestRegisterImagePipelineRejectsGarbage(t *testing.T) {
	sys := newSystem(t, ImageProcessing(0))
	defer sys.Shutdown()
	if err := RegisterImagePipeline(sys); err != nil {
		t.Fatal(err)
	}
	inv, err := sys.Invoke(map[string][]byte{"extract.image": []byte("not an image")})
	if err != nil {
		t.Fatal(err)
	}
	if err := inv.Wait(); err == nil {
		t.Fatal("garbage image accepted")
	}
}

func TestRegisterVideoPipelineEndToEnd(t *testing.T) {
	sys := newSystem(t, VideoFFmpeg(4, 0))
	defer sys.Shutdown()
	if err := RegisterVideoPipeline(sys, 4); err != nil {
		t.Fatal(err)
	}
	video := make([]byte, 128<<10)
	rand.New(rand.NewSource(3)).Read(video)
	inv, err := sys.Invoke(map[string][]byte{"split.video": video})
	if err != nil {
		t.Fatal(err)
	}
	if err := inv.Wait(); err != nil {
		t.Fatal(err)
	}
	out, _ := inv.OutputBytes("out")
	// Transcode halves each chunk (4-bit delta pairs).
	if len(out) != len(video)/2 {
		t.Fatalf("out = %d bytes, want %d", len(out), len(video)/2)
	}
	// Deterministic: concatenating per-chunk transcodes matches.
	var want []byte
	for i := 0; i < 4; i++ {
		lo, hi := i*len(video)/4, (i+1)*len(video)/4
		want = append(want, Transcode(video[lo:hi])...)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("pipeline output differs from direct transcode")
	}
}

func TestDecodeCountsRejectsGarbage(t *testing.T) {
	if _, err := decodeCounts([]byte("not a count line")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := decodeCounts([]byte("word notanumber")); err == nil {
		t.Fatal("non-numeric count accepted")
	}
	m, err := decodeCounts([]byte(""))
	if err != nil || len(m) != 0 {
		t.Fatalf("empty decode = %v, %v", m, err)
	}
}

func TestEncodeDecodeCountsRoundTrip(t *testing.T) {
	in := map[string]int{"b": 2, "a": 1, "zz": 30}
	out, err := decodeCounts(encodeCounts(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("out = %v", out)
	}
	for k, v := range in {
		if out[k] != v {
			t.Fatalf("out[%s] = %d, want %d", k, out[k], v)
		}
	}
}
