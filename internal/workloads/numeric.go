package workloads

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Matrix is a dense row-major float64 matrix used by the real SVD workload.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Marshal serializes the matrix (little-endian: rows, cols, data).
func (m *Matrix) Marshal() []byte {
	buf := make([]byte, 16+8*len(m.Data))
	binary.LittleEndian.PutUint64(buf[0:], uint64(m.Rows))
	binary.LittleEndian.PutUint64(buf[8:], uint64(m.Cols))
	for i, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[16+8*i:], math.Float64bits(v))
	}
	return buf
}

// UnmarshalMatrix decodes a matrix serialized with Marshal.
func UnmarshalMatrix(b []byte) (*Matrix, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("workloads: matrix blob too short (%d bytes)", len(b))
	}
	rows := int(binary.LittleEndian.Uint64(b[0:]))
	cols := int(binary.LittleEndian.Uint64(b[8:]))
	if rows < 0 || cols < 0 || rows*cols > (len(b)-16)/8 {
		return nil, fmt.Errorf("workloads: matrix header %dx%d inconsistent with %d bytes", rows, cols, len(b))
	}
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[16+8*i:]))
	}
	return m, nil
}

// SingularValues computes the singular values of m with one-sided Jacobi
// rotations (Hestenes method): columns are orthogonalized pairwise until
// convergence; the singular values are the resulting column norms. Returned
// in descending order.
func (m *Matrix) SingularValues() []float64 {
	// Work on a copy; operate column-wise on A (rows x cols), cols <= rows
	// expected; transpose otherwise.
	a := m
	if m.Cols > m.Rows {
		a = m.Transpose()
	}
	rows, cols := a.Rows, a.Cols
	work := make([]float64, len(a.Data))
	copy(work, a.Data)
	col := func(j int) []float64 {
		out := make([]float64, rows)
		for i := 0; i < rows; i++ {
			out[i] = work[i*cols+j]
		}
		return out
	}
	setCol := func(j int, v []float64) {
		for i := 0; i < rows; i++ {
			work[i*cols+j] = v[i]
		}
	}
	const eps = 1e-10
	for sweep := 0; sweep < 30; sweep++ {
		off := 0.0
		for p := 0; p < cols-1; p++ {
			for q := p + 1; q < cols; q++ {
				cp, cq := col(p), col(q)
				alpha, beta, gamma := 0.0, 0.0, 0.0
				for i := 0; i < rows; i++ {
					alpha += cp[i] * cp[i]
					beta += cq[i] * cq[i]
					gamma += cp[i] * cq[i]
				}
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) {
					continue
				}
				off += gamma * gamma
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < rows; i++ {
					vp := c*cp[i] - s*cq[i]
					vq := s*cp[i] + c*cq[i]
					cp[i], cq[i] = vp, vq
				}
				setCol(p, cp)
				setCol(q, cq)
			}
		}
		if off < eps {
			break
		}
	}
	sv := make([]float64, cols)
	for j := 0; j < cols; j++ {
		sum := 0.0
		for i := 0; i < rows; i++ {
			v := work[i*cols+j]
			sum += v * v
		}
		sv[j] = math.Sqrt(sum)
	}
	// Descending insertion sort (cols is small).
	for i := 1; i < len(sv); i++ {
		for j := i; j > 0 && sv[j] > sv[j-1]; j-- {
			sv[j], sv[j-1] = sv[j-1], sv[j]
		}
	}
	return sv
}

// Transpose returns the transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// RowBlocks splits m into n row blocks (the last absorbs the remainder).
func (m *Matrix) RowBlocks(n int) []*Matrix {
	if n < 1 {
		n = 1
	}
	if n > m.Rows {
		n = m.Rows
	}
	out := make([]*Matrix, 0, n)
	per := m.Rows / n
	for b := 0; b < n; b++ {
		lo := b * per
		hi := lo + per
		if b == n-1 {
			hi = m.Rows
		}
		blk := NewMatrix(hi-lo, m.Cols)
		copy(blk.Data, m.Data[lo*m.Cols:hi*m.Cols])
		out = append(out, blk)
	}
	return out
}

// GramSum accumulates Aᵀ·A of the block into acc (cols x cols); used to
// combine partial factorization results: the singular values of A are the
// square roots of the eigenvalues of ΣᵢAᵢᵀAᵢ.
func (m *Matrix) GramSum(acc *Matrix) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for a := 0; a < m.Cols; a++ {
			if row[a] == 0 {
				continue
			}
			for b := 0; b < m.Cols; b++ {
				acc.Data[a*m.Cols+b] += row[a] * row[b]
			}
		}
	}
}

// SymmetricEigenvalues computes the eigenvalues of a symmetric matrix with
// cyclic Jacobi rotations, returned descending. Used on the accumulated
// Gram matrix in the combine step.
func (m *Matrix) SymmetricEigenvalues() []float64 {
	n := m.Rows
	a := make([]float64, len(m.Data))
	copy(a, m.Data)
	at := func(i, j int) float64 { return a[i*n+j] }
	set := func(i, j int, v float64) { a[i*n+j] = v }
	const eps = 1e-12
	for sweep := 0; sweep < 50; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				off += at(p, q) * at(p, q)
			}
		}
		if off < eps {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := at(p, q)
				if math.Abs(apq) < eps {
					continue
				}
				theta := (at(q, q) - at(p, p)) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(1+theta*theta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for k := 0; k < n; k++ {
					akp := at(k, p)
					akq := at(k, q)
					set(k, p, c*akp-s*akq)
					set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := at(p, k)
					aqk := at(q, k)
					set(p, k, c*apk-s*aqk)
					set(q, k, s*apk+c*aqk)
				}
			}
		}
	}
	ev := make([]float64, n)
	for i := 0; i < n; i++ {
		ev[i] = at(i, i)
	}
	for i := 1; i < len(ev); i++ {
		for j := i; j > 0 && ev[j] > ev[j-1]; j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
		}
	}
	return ev
}
