// Package workloads defines the four benchmark serverless workflows the
// paper evaluates — Video-FFmpeg (vid), ML-based Image Processing (img),
// Singular Value Decomposition (svd) and WordCount (wc) — in two forms:
//
//   - a Profile for the simulation plane: the data-flow DAG plus per-
//     function execution times (referenced to a 128 MB container) and per-
//     output data sizes, parameterized by input size and fan-out degree and
//     calibrated so the control-flow communication shares match the paper's
//     Fig. 2(a) characterization (img 26.0 %, vid 49.5 %, svd 35.3 %,
//     wc 89.2 %);
//
//   - real Go handlers for the runtime plane (see handlers.go): an actual
//     word count, a one-sided Jacobi SVD, image convolution/resampling, and
//     a chunked video "transcode" stand-in.
package workloads

import (
	"fmt"
	"math"
	"time"

	"repro/internal/workflow"
)

// Profile describes one benchmark for the simulation plane.
type Profile struct {
	Name     string
	Workflow *workflow.Workflow
	// ExecRef is the function execution time in the 128 MB reference
	// container (scales inversely with container memory).
	ExecRef map[string]time.Duration
	// OutSize is the per-item output size in bytes, keyed "fn.output".
	// FOREACH outputs list the size of each element.
	OutSize map[string]int64
	// Fanout is the FOREACH degree used by Route emissions.
	Fanout int
	// InputSize is the user input payload in bytes.
	InputSize int64
}

// ExecOf returns the reference execution time of fn.
func (p *Profile) ExecOf(fn string) time.Duration { return p.ExecRef[fn] }

// SizeOf returns the per-item size of output fn.output.
func (p *Profile) SizeOf(fn, output string) int64 { return p.OutSize[fn+"."+output] }

// mustParse parses a DSL or panics; profiles are package-defined constants.
func mustParse(src string) *workflow.Workflow {
	w, err := workflow.ParseDSLString(src)
	if err != nil {
		panic(fmt.Sprintf("workloads: bad builtin DSL: %v", err))
	}
	return w
}

const wcDSL = `
workflow wc
function start
  input src from $USER
  output filelist type FOREACH to count.file
function count
  input file
  output result type MERGE to merge.counts
function merge
  input counts type LIST
  output out to $USER
`

// WordCount builds the wc profile: a FOREACH/MERGE map-reduce over text.
// fanout is the number of count branches; inputSize the text size in bytes.
// Communication dominates (~89 % under control flow): the compute per byte
// is tiny relative to the double transfer of the shards.
func WordCount(fanout int, inputSize int64) *Profile {
	if fanout < 1 {
		fanout = 1
	}
	if inputSize <= 0 {
		inputSize = 1 << 20 // 1 MB
	}
	shard := inputSize / int64(fanout)
	mb := float64(inputSize) / float64(1<<20)
	shardMB := float64(shard) / float64(1<<20)
	return &Profile{
		Name:     "wc",
		Workflow: mustParse(wcDSL),
		// Compute grows superlinearly with the data handled per function
		// (hash-map growth and spills), so large inputs become compute
		// bound — the paper's Fig. 16(b) observation that the data-flow
		// advantage shrinks as input size grows.
		ExecRef: map[string]time.Duration{
			"start": scaleDur(8*time.Millisecond, mb),
			"count": scaleDur(18*time.Millisecond, math.Pow(shardMB/0.25, 1.75)),
			"merge": scaleDur(18*time.Millisecond, math.Pow(mb, 1.4)),
		},
		OutSize: map[string]int64{
			"start.filelist": shard,
			"count.result":   shard / 2,
			"merge.out":      inputSize / 16,
		},
		Fanout:    fanout,
		InputSize: inputSize,
	}
}

const imgDSL = `
workflow img
function extract
  input image from $USER
  output meta to transform.meta
  output thumb_src to thumbnail.image
  output detect_src to detect.image
function transform
  input meta
  output tagged to store.meta
function thumbnail
  input image
  output thumb to store.thumb
function detect
  input image
  output objects to store.objects
function store
  input meta
  input thumb
  input objects
  output out to $USER
`

// ImageProcessing builds the img profile: a metadata/thumbnail/ML-detection
// diamond over one uploaded image. Computation dominates (ML inference),
// communication is ~26 % under control flow.
func ImageProcessing(inputSize int64) *Profile {
	if inputSize <= 0 {
		inputSize = 1228800 // 1.2 MB image
	}
	f := float64(inputSize) / 1228800
	return &Profile{
		Name:     "img",
		Workflow: mustParse(imgDSL),
		ExecRef: map[string]time.Duration{
			"extract":   scaleDur(500*time.Millisecond, f),
			"transform": scaleDur(250*time.Millisecond, f),
			"thumbnail": scaleDur(900*time.Millisecond, f),
			"detect":    scaleDur(1600*time.Millisecond, f), // ML inference
			"store":     scaleDur(500*time.Millisecond, f),
		},
		OutSize: map[string]int64{
			"extract.meta":       8 << 10,
			"extract.thumb_src":  inputSize,
			"extract.detect_src": inputSize,
			"transform.tagged":   8 << 10,
			"thumbnail.thumb":    inputSize / 8,
			"detect.objects":     16 << 10,
			"store.out":          inputSize / 8,
		},
		Fanout:    1,
		InputSize: inputSize,
	}
}

const vidDSL = `
workflow vid
function split
  input video from $USER
  output chunks type FOREACH to transcode.chunk
function transcode
  input chunk
  output encoded type MERGE to concat.parts
function concat
  input parts type LIST
  output out to $USER
`

// VideoFFmpeg builds the vid profile: split → parallel transcode → concat.
// Chunks are large, so communication and computation are comparable
// (~50 % each under control flow).
func VideoFFmpeg(fanout int, inputSize int64) *Profile {
	if fanout < 1 {
		fanout = 4
	}
	if inputSize <= 0 {
		inputSize = 6 << 20 // 6 MB clip
	}
	chunk := inputSize / int64(fanout)
	mb := float64(inputSize) / float64(6<<20)
	chunkMB := float64(chunk) / float64(1.5*float64(1<<20))
	return &Profile{
		Name:     "vid",
		Workflow: mustParse(vidDSL),
		ExecRef: map[string]time.Duration{
			"split":     scaleDur(1200*time.Millisecond, mb),
			"transcode": scaleDur(900*time.Millisecond, chunkMB),
			"concat":    scaleDur(1400*time.Millisecond, mb),
		},
		OutSize: map[string]int64{
			"split.chunks":      chunk,
			"transcode.encoded": int64(float64(chunk) * 0.7),
			"concat.out":        int64(float64(inputSize) * 0.7),
		},
		Fanout:    fanout,
		InputSize: inputSize,
	}
}

const svdDSL = `
workflow svd
function partition
  input matrix from $USER
  output blocks type FOREACH to factorize.block
function factorize
  input block
  output partial type MERGE to combine.partials
function combine
  input partials type LIST
  output out to $USER
`

// SVD builds the svd profile: block partition → parallel Jacobi sweeps →
// combine. Compute-heavy numeric kernels put communication at ~35 % under
// control flow.
func SVD(fanout int, inputSize int64) *Profile {
	if fanout < 1 {
		fanout = 4
	}
	if inputSize <= 0 {
		inputSize = 4 << 20 // 4 MB matrix
	}
	block := inputSize / int64(fanout)
	mb := float64(inputSize) / float64(4<<20)
	blockMB := float64(block) / float64(1<<20)
	return &Profile{
		Name:     "svd",
		Workflow: mustParse(svdDSL),
		ExecRef: map[string]time.Duration{
			"partition": scaleDur(400*time.Millisecond, mb),
			"factorize": scaleDur(850*time.Millisecond, blockMB),
			"combine":   scaleDur(1200*time.Millisecond, mb),
		},
		OutSize: map[string]int64{
			"partition.blocks":  block,
			"factorize.partial": block / 8,
			"combine.out":       inputSize / 8,
		},
		Fanout:    fanout,
		InputSize: inputSize,
	}
}

// scaleDur scales d by f (clamped to a 1 ms floor so degenerate parameters
// stay positive).
func scaleDur(d time.Duration, f float64) time.Duration {
	if f <= 0 {
		f = 0.01
	}
	out := time.Duration(float64(d) * f)
	if out < time.Millisecond {
		out = time.Millisecond
	}
	return out
}

// All returns the four benchmarks with their default parameters, keyed by
// name in the paper's order: img, vid, svd, wc.
func All() []*Profile {
	return []*Profile{
		ImageProcessing(0),
		VideoFFmpeg(0, 0),
		SVD(0, 0),
		WordCount(4, 0),
	}
}

// ByName returns a default-parameter profile by benchmark name.
func ByName(name string) (*Profile, error) {
	switch name {
	case "img":
		return ImageProcessing(0), nil
	case "vid":
		return VideoFFmpeg(0, 0), nil
	case "svd":
		return SVD(0, 0), nil
	case "wc":
		return WordCount(4, 0), nil
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}
