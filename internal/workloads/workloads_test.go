package workloads

import (
	"math"
	"testing"
	"time"

	"repro/internal/workflow"
)

func TestAllProfilesValid(t *testing.T) {
	for _, p := range All() {
		if err := p.Workflow.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, f := range p.Workflow.Functions {
			if p.ExecOf(f.Name) <= 0 {
				t.Fatalf("%s: function %s has no exec time", p.Name, f.Name)
			}
			for _, o := range f.Outputs {
				if p.SizeOf(f.Name, o.Name) <= 0 {
					t.Fatalf("%s: output %s.%s has no size", p.Name, f.Name, o.Name)
				}
			}
		}
		if p.InputSize <= 0 || p.Fanout < 1 {
			t.Fatalf("%s: bad params %+v", p.Name, p)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"img", "vid", "svd", "wc"} {
		p, err := ByName(name)
		if err != nil || p.Name != name {
			t.Fatalf("ByName(%s) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("bogus accepted")
	}
}

func TestWordCountParameterization(t *testing.T) {
	small := WordCount(4, 1<<20)
	big := WordCount(4, 16<<20)
	if big.ExecOf("count") <= small.ExecOf("count") {
		t.Fatal("count exec should grow with input size")
	}
	if big.SizeOf("start", "filelist") != 4<<20 {
		t.Fatalf("shard = %d", big.SizeOf("start", "filelist"))
	}
	wide := WordCount(16, 1<<20)
	if wide.SizeOf("start", "filelist") >= small.SizeOf("start", "filelist") {
		t.Fatal("shard should shrink with fan-out")
	}
	if wide.Fanout != 16 {
		t.Fatalf("fanout = %d", wide.Fanout)
	}
	// Degenerate parameters clamp.
	p := WordCount(0, 0)
	if p.Fanout != 1 || p.InputSize != 1<<20 {
		t.Fatalf("clamped params: %+v", p)
	}
}

func TestScaleDurFloor(t *testing.T) {
	if d := scaleDur(time.Second, 0); d != 10*time.Millisecond {
		t.Fatalf("scaleDur(1s, 0) = %v", d)
	}
	if d := scaleDur(100*time.Millisecond, 1e-9); d != time.Millisecond {
		t.Fatalf("floor broken: %v", d)
	}
}

func TestCommunicationShareOrdering(t *testing.T) {
	// Sanity: the per-profile comm/comp ratios under a 128 MB container and
	// double transfer through storage should order wc > vid > svd > img,
	// matching Fig. 2(a)'s characterization.
	ratio := func(p *Profile) float64 {
		const bw = 5e6 // 40 Mbps container
		comm, comp := 0.0, 0.0
		order, _ := p.Workflow.TopoOrder()
		for _, fn := range order {
			f, _ := p.Workflow.Function(fn)
			// One instance's compute on the (parallel-branch) critical path.
			comp += p.ExecOf(fn).Seconds()
			var in int64
			if len(p.Workflow.Predecessors(fn)) == 0 {
				in = p.InputSize
			}
			for _, e := range p.Workflow.Edges() {
				if e.To != fn {
					continue
				}
				sz := p.SizeOf(e.From, e.Output)
				if e.Kind == workflow.Merge {
					sz *= int64(p.Fanout) // fan-in collects every branch
				}
				in += sz
			}
			var out int64
			for _, o := range f.Outputs {
				sz := p.SizeOf(fn, o.Name)
				if o.Kind == workflow.Foreach {
					sz *= int64(p.Fanout) // fan-out ships every element
				}
				out += sz
			}
			comm += (float64(in) + float64(out)) / bw
		}
		return comm / (comm + comp)
	}
	img, _ := ByName("img")
	vid, _ := ByName("vid")
	svd, _ := ByName("svd")
	wc, _ := ByName("wc")
	rImg, rVid, rSvd, rWc := ratio(img), ratio(vid), ratio(svd), ratio(wc)
	if !(rWc > rVid && rVid > rSvd && rSvd > rImg) {
		t.Fatalf("comm share ordering broken: img=%.2f vid=%.2f svd=%.2f wc=%.2f",
			rImg, rVid, rSvd, rWc)
	}
	if rWc < 0.7 {
		t.Fatalf("wc comm share %.2f, want comm-dominated (>0.7)", rWc)
	}
	if rImg > 0.5 {
		t.Fatalf("img comm share %.2f, want compute-dominated (<0.5)", rImg)
	}
}

func TestMatrixMarshalRoundTrip(t *testing.T) {
	m := NewMatrix(3, 2)
	for i := range m.Data {
		m.Data[i] = float64(i) * 1.5
	}
	back, err := UnmarshalMatrix(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != 3 || back.Cols != 2 {
		t.Fatalf("dims %dx%d", back.Rows, back.Cols)
	}
	for i := range m.Data {
		if back.Data[i] != m.Data[i] {
			t.Fatalf("data[%d] = %v", i, back.Data[i])
		}
	}
}

func TestUnmarshalMatrixRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalMatrix([]byte{1, 2, 3}); err == nil {
		t.Fatal("short blob accepted")
	}
	bad := NewMatrix(2, 2).Marshal()[:20] // truncated data
	if _, err := UnmarshalMatrix(bad); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

func TestSingularValuesKnownMatrix(t *testing.T) {
	// Diagonal matrix: singular values are |diagonal| sorted descending.
	m := NewMatrix(3, 3)
	m.Set(0, 0, 3)
	m.Set(1, 1, -5)
	m.Set(2, 2, 1)
	sv := m.SingularValues()
	want := []float64{5, 3, 1}
	for i := range want {
		if math.Abs(sv[i]-want[i]) > 1e-8 {
			t.Fatalf("sv = %v, want %v", sv, want)
		}
	}
}

func TestSingularValuesMatchGramEigen(t *testing.T) {
	// Property: svd via Jacobi equals sqrt(eig(AᵀA)) via the block path.
	m := NewMatrix(8, 4)
	for i := range m.Data {
		m.Data[i] = math.Sin(float64(i)*1.3) * 2.0
	}
	direct := m.SingularValues()
	// Blocked: sum of per-block Gram matrices.
	acc := NewMatrix(4, 4)
	for _, blk := range m.RowBlocks(3) {
		blk.GramSum(acc)
	}
	ev := acc.SymmetricEigenvalues()
	for i := range direct {
		got := math.Sqrt(math.Max(0, ev[i]))
		if math.Abs(direct[i]-got) > 1e-6 {
			t.Fatalf("sv[%d]: direct %v vs blocked %v", i, direct[i], got)
		}
	}
}

func TestRowBlocksCoverMatrix(t *testing.T) {
	m := NewMatrix(7, 2)
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	blocks := m.RowBlocks(3)
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	rows := 0
	for _, b := range blocks {
		rows += b.Rows
		if b.Cols != 2 {
			t.Fatalf("cols = %d", b.Cols)
		}
	}
	if rows != 7 {
		t.Fatalf("rows = %d", rows)
	}
	// Clamps.
	if len(m.RowBlocks(0)) != 1 || len(m.RowBlocks(100)) != 7 {
		t.Fatal("clamping broken")
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := NewMatrix(2, 3)
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	tt := m.Transpose().Transpose()
	for i := range m.Data {
		if tt.Data[i] != m.Data[i] {
			t.Fatal("transpose not involutive")
		}
	}
}

func TestFloatsRoundTrip(t *testing.T) {
	in := []float64{1.5, -2.25, 0}
	out, err := UnmarshalFloats(marshalFloats(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("out = %v", out)
		}
	}
	if _, err := UnmarshalFloats([]byte{1}); err == nil {
		t.Fatal("short blob accepted")
	}
}

func TestImageRoundTripAndOps(t *testing.T) {
	im := GenImage(64, 48, 1)
	back, err := UnmarshalImage(im.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.W != 64 || back.H != 48 || len(back.Pix) != 64*48 {
		t.Fatalf("image %dx%d", back.W, back.H)
	}
	th := im.Thumbnail(4)
	if th.W != 16 || th.H != 12 {
		t.Fatalf("thumbnail %dx%d", th.W, th.H)
	}
	blurred := im.BoxBlur(1)
	if len(blurred.Pix) != len(im.Pix) {
		t.Fatal("blur changed dimensions")
	}
	// Blur must reduce total variation.
	tv := func(im *Image) int {
		sum := 0
		for i := 1; i < len(im.Pix); i++ {
			d := int(im.Pix[i]) - int(im.Pix[i-1])
			if d < 0 {
				d = -d
			}
			sum += d
		}
		return sum
	}
	if tv(blurred) >= tv(im) {
		t.Fatal("blur did not smooth")
	}
	if im.DetectBright() <= 0 {
		t.Fatal("synthetic image should contain bright regions")
	}
	if _, err := UnmarshalImage([]byte{0}); err == nil {
		t.Fatal("short image accepted")
	}
}

func TestGenImageDeterministic(t *testing.T) {
	a := GenImage(32, 32, 7)
	b := GenImage(32, 32, 7)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("GenImage not deterministic")
		}
	}
}

func TestTranscodeCompresses(t *testing.T) {
	in := make([]byte, 1000)
	for i := range in {
		in[i] = byte(i * 7)
	}
	out := Transcode(in)
	if len(out) != 500 {
		t.Fatalf("transcode output %d bytes, want 500", len(out))
	}
	// Deterministic.
	out2 := Transcode(in)
	for i := range out {
		if out[i] != out2[i] {
			t.Fatal("transcode not deterministic")
		}
	}
}
